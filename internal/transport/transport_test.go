package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bluedove/internal/wire"
)

// transportUnderTest builds a fresh transport pair (or shared fabric) for
// each implementation.
type factory struct {
	name string
	// newNode returns a transport instance for one node with the given
	// label.
	newNode func(label string) Transport
	cleanup func()
}

func factories(t *testing.T) []factory {
	t.Helper()
	var out []factory

	mesh := NewMesh(0)
	out = append(out, factory{
		name:    "inproc",
		newNode: func(label string) Transport { return mesh.Endpoint(label) },
		cleanup: func() { mesh.Close() },
	})

	var tcps []*TCP
	out = append(out, factory{
		name: "tcp",
		newNode: func(string) Transport {
			tt := NewTCP()
			tcps = append(tcps, tt)
			return tt
		},
		cleanup: func() {
			for _, tt := range tcps {
				tt.Close()
			}
		},
	})
	return out
}

func TestSendDelivers(t *testing.T) {
	for _, f := range factories(t) {
		t.Run(f.name, func(t *testing.T) {
			defer f.cleanup()
			var got atomic.Int64
			server := f.newNode("server")
			addr, err := server.Listen(listenAddr(f.name, "server"), func(env *wire.Envelope) *wire.Envelope {
				if env.Kind == wire.KindForward {
					got.Add(1)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			client := f.newNode("client")
			if f.name == "inproc" {
				if _, err := client.Listen("client", func(*wire.Envelope) *wire.Envelope { return nil }); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward, From: 1, Body: []byte{1}}); err != nil {
					t.Fatal(err)
				}
			}
			waitFor(t, func() bool { return got.Load() == 50 })
		})
	}
}

func TestRequestResponse(t *testing.T) {
	for _, f := range factories(t) {
		t.Run(f.name, func(t *testing.T) {
			defer f.cleanup()
			server := f.newNode("server")
			addr, err := server.Listen(listenAddr(f.name, "server"), func(env *wire.Envelope) *wire.Envelope {
				if env.Kind == wire.KindTableRequest {
					return &wire.Envelope{Kind: wire.KindTableResponse, From: 9, Body: append([]byte("tbl:"), env.Body...)}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			client := f.newNode("client")
			if f.name == "inproc" {
				client.Listen("client", func(*wire.Envelope) *wire.Envelope { return nil })
			}
			resp, err := client.Request(addr, &wire.Envelope{Kind: wire.KindTableRequest, From: 1, Body: []byte("x")}, time.Second)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Kind != wire.KindTableResponse || string(resp.Body) != "tbl:x" || resp.From != 9 {
				t.Fatalf("resp = %+v", resp)
			}
		})
	}
}

func TestRequestUnreachable(t *testing.T) {
	for _, f := range factories(t) {
		t.Run(f.name, func(t *testing.T) {
			defer f.cleanup()
			client := f.newNode("client")
			if f.name == "inproc" {
				client.Listen("client", func(*wire.Envelope) *wire.Envelope { return nil })
			}
			dest := "127.0.0.1:1" // nothing listens there
			if f.name == "inproc" {
				dest = "nowhere"
			}
			if _, err := client.Request(dest, &wire.Envelope{Kind: wire.KindPoll}, 200*time.Millisecond); !errors.Is(err, ErrUnreachable) {
				t.Errorf("request to unreachable destination: err = %v, want ErrUnreachable", err)
			}
			if err := client.Send(dest, &wire.Envelope{Kind: wire.KindForward}); !errors.Is(err, ErrUnreachable) {
				t.Errorf("send to unreachable destination: err = %v, want ErrUnreachable", err)
			}
		})
	}
}

func TestSendOrderingPreserved(t *testing.T) {
	for _, f := range factories(t) {
		t.Run(f.name, func(t *testing.T) {
			defer f.cleanup()
			var mu sync.Mutex
			var seq []byte
			server := f.newNode("server")
			addr, err := server.Listen(listenAddr(f.name, "server"), func(env *wire.Envelope) *wire.Envelope {
				mu.Lock()
				seq = append(seq, env.Body[0])
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			client := f.newNode("client")
			if f.name == "inproc" {
				client.Listen("client", func(*wire.Envelope) *wire.Envelope { return nil })
			}
			const n = 200
			for i := 0; i < n; i++ {
				if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward, Body: []byte{byte(i)}}); err != nil {
					t.Fatal(err)
				}
			}
			waitFor(t, func() bool {
				mu.Lock()
				defer mu.Unlock()
				return len(seq) == n
			})
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < n; i++ {
				if seq[i] != byte(i) {
					t.Fatalf("out of order at %d: %d", i, seq[i])
				}
			}
		})
	}
}

func TestClosedTransport(t *testing.T) {
	tt := NewTCP()
	addr, err := tt.Listen("127.0.0.1:0", func(*wire.Envelope) *wire.Envelope { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := tt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tt.Send(addr, &wire.Envelope{Kind: wire.KindForward}); err == nil {
		t.Error("send on closed transport succeeded")
	}
	if _, err := tt.Listen("127.0.0.1:0", nil); err == nil {
		t.Error("listen on closed transport succeeded")
	}
	if err := tt.Close(); err != nil {
		t.Error("double close should be nil")
	}
}

func TestMeshPartition(t *testing.T) {
	mesh := NewMesh(0)
	defer mesh.Close()
	var got atomic.Int64
	a := mesh.Endpoint("a")
	a.Listen("a", func(*wire.Envelope) *wire.Envelope { return nil })
	b := mesh.Endpoint("b")
	b.Listen("b", func(*wire.Envelope) *wire.Envelope { got.Add(1); return nil })

	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward}); err != nil {
		t.Fatal(err)
	}
	mesh.PartitionBoth("a", "b", true)
	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward}); err == nil {
		t.Error("send across partition succeeded")
	}
	mesh.PartitionBoth("a", "b", false)
	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 2 })
}

func TestMeshNodeDown(t *testing.T) {
	mesh := NewMesh(0)
	defer mesh.Close()
	a := mesh.Endpoint("a")
	a.Listen("a", func(*wire.Envelope) *wire.Envelope { return nil })
	b := mesh.Endpoint("b")
	b.Listen("b", func(env *wire.Envelope) *wire.Envelope {
		return &wire.Envelope{Kind: wire.KindError}
	})
	mesh.SetDown("b", true)
	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward}); err == nil {
		t.Error("send to downed node succeeded")
	}
	if _, err := a.Request("b", &wire.Envelope{Kind: wire.KindPoll}, 100*time.Millisecond); err == nil {
		t.Error("request to downed node succeeded")
	}
	mesh.SetDown("b", false)
	if _, err := a.Request("b", &wire.Envelope{Kind: wire.KindPoll}, time.Second); err != nil {
		t.Errorf("request after restore failed: %v", err)
	}
}

func TestMeshBytesAccounting(t *testing.T) {
	mesh := NewMesh(0)
	defer mesh.Close()
	a := mesh.Endpoint("a")
	a.Listen("a", func(*wire.Envelope) *wire.Envelope { return nil })
	b := mesh.Endpoint("b")
	b.Listen("b", func(*wire.Envelope) *wire.Envelope { return nil })
	env := &wire.Envelope{Kind: wire.KindForward, Body: make([]byte, 100)}
	if err := a.Send("b", env); err != nil {
		t.Fatal(err)
	}
	if got := mesh.BytesSent(); got != int64(wire.FrameSize(env)) {
		t.Errorf("BytesSent = %d, want %d", got, wire.FrameSize(env))
	}
}

func TestMeshDuplicateBind(t *testing.T) {
	mesh := NewMesh(0)
	defer mesh.Close()
	a := mesh.Endpoint("a")
	if _, err := a.Listen("a", func(*wire.Envelope) *wire.Envelope { return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := mesh.Endpoint("a2").Listen("a", nil); err == nil {
		t.Error("duplicate bind succeeded")
	}
	// Auto-assigned addresses.
	auto := mesh.Endpoint("")
	bound, err := auto.Listen(":0", func(*wire.Envelope) *wire.Envelope { return nil })
	if err != nil || bound == "" || bound == ":0" {
		t.Errorf("auto bind: %q, %v", bound, err)
	}
}

func TestTCPSendReconnects(t *testing.T) {
	server1 := NewTCP()
	var got atomic.Int64
	h := func(env *wire.Envelope) *wire.Envelope { got.Add(1); return nil }
	addr, err := server1.Listen("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCP()
	defer client.Close()
	if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return got.Load() == 1 })
	// Restart the server on the same port.
	server1.Close()
	server2 := NewTCP()
	defer server2.Close()
	if _, err := server2.Listen(addr, h); err != nil {
		t.Fatal(err)
	}
	// The pooled connection is stale. A write into the dead socket may
	// "succeed" locally before the RST arrives, so keep sending until a
	// message actually lands on the restarted server (each failed write
	// invalidates the pooled connection and the next Send redials).
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) && got.Load() < 2 {
		_ = client.Send(addr, &wire.Envelope{Kind: wire.KindForward})
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(t, func() bool { return got.Load() >= 2 })
}

// TestTCPIdleTimeoutClosesDeadPeer: an accepted connection that stops
// delivering frames must be dropped after IdleTimeout — a dead peer must not
// pin its read goroutine and buffers forever — while a connection with
// frames flowing (each frame re-arms the deadline) stays open, and a sender
// that lost its pooled connection to the reaper just redials on the next
// Send instead of surfacing an error.
func TestTCPIdleTimeoutClosesDeadPeer(t *testing.T) {
	server := NewTCP()
	server.IdleTimeout = 150 * time.Millisecond
	defer server.Close()
	var got atomic.Int64
	addr, err := server.Listen("127.0.0.1:0", func(env *wire.Envelope) *wire.Envelope {
		got.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// An active connection survives several idle windows: keep frames
	// flowing for 3x the timeout on one pooled connection.
	client := NewTCP()
	defer client.Close()
	for i := 0; i < 9; i++ {
		if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward}); err != nil {
			t.Fatalf("send %d on active connection: %v", i, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitFor(t, func() bool { return got.Load() == 9 })
	if n := server.IdleClosed.Value(); n != 0 {
		t.Fatalf("active connection reaped %d times, want 0", n)
	}

	// A raw connection that never writes is reaped: the server closes it and
	// our read unblocks with EOF (not a local deadline — we set none).
	dead, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	if err := dead.SetReadDeadline(time.Now().Add(4 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := dead.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection still open after IdleTimeout")
	} else if ne := net.Error(nil); errors.As(err, &ne) && ne.Timeout() {
		t.Fatal("server never closed the idle connection")
	}
	waitFor(t, func() bool { return server.IdleClosed.Value() >= 1 })

	// The idle client's pooled connection was reaped too; a later Send must
	// transparently redial (stale-connection retry), not fail.
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) && got.Load() < 10 {
		_ = client.Send(addr, &wire.Envelope{Kind: wire.KindForward})
		time.Sleep(20 * time.Millisecond)
	}
	waitFor(t, func() bool { return got.Load() >= 10 })
}

func TestTCPRequestTimeout(t *testing.T) {
	server := NewTCP()
	defer server.Close()
	addr, err := server.Listen("127.0.0.1:0", func(env *wire.Envelope) *wire.Envelope {
		time.Sleep(500 * time.Millisecond)
		return &wire.Envelope{Kind: wire.KindError}
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCP()
	defer client.Close()
	start := time.Now()
	if _, err := client.Request(addr, &wire.Envelope{Kind: wire.KindPoll}, 100*time.Millisecond); err == nil {
		t.Error("expected timeout")
	}
	if time.Since(start) > 400*time.Millisecond {
		t.Error("timeout not honored")
	}
}

func TestTCPNoResponseHandler(t *testing.T) {
	server := NewTCP()
	defer server.Close()
	// Handler returns nil and closes the connection implicitly only when
	// the client disconnects; a Request against it should error out at the
	// deadline rather than hang.
	addr, err := server.Listen("127.0.0.1:0", func(env *wire.Envelope) *wire.Envelope { return nil })
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCP()
	defer client.Close()
	if _, err := client.Request(addr, &wire.Envelope{Kind: wire.KindPoll}, 150*time.Millisecond); err == nil {
		t.Error("request with no response should fail")
	}
}

// TestTCPErrUnreachableClassification pins down which failures callers can
// classify with errors.Is(err, ErrUnreachable): dial failures and peers that
// hang up without answering are unreachable; a slow peer is a timeout, not
// unreachable.
func TestTCPErrUnreachableClassification(t *testing.T) {
	client := NewTCP()
	defer client.Close()

	// Nothing listening: dial failure.
	if _, err := client.Request("127.0.0.1:1", &wire.Envelope{Kind: wire.KindPoll}, 200*time.Millisecond); !errors.Is(err, ErrUnreachable) {
		t.Errorf("dial failure: err = %v, want ErrUnreachable", err)
	}

	// Peer accepts, then hangs up without a response frame: EOF.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	if _, err := client.Request(ln.Addr().String(), &wire.Envelope{Kind: wire.KindPoll}, time.Second); !errors.Is(err, ErrUnreachable) {
		t.Errorf("hangup without response: err = %v, want ErrUnreachable", err)
	}

	// Peer is reachable but slow: a timeout, deliberately NOT unreachable.
	server := NewTCP()
	defer server.Close()
	slow, err := server.Listen("127.0.0.1:0", func(*wire.Envelope) *wire.Envelope {
		time.Sleep(500 * time.Millisecond)
		return &wire.Envelope{Kind: wire.KindError}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Request(slow, &wire.Envelope{Kind: wire.KindPoll}, 100*time.Millisecond)
	if err == nil {
		t.Fatal("slow peer did not time out")
	}
	if errors.Is(err, ErrUnreachable) {
		t.Errorf("timeout misclassified as unreachable: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("timeout not surfaced as net.Error: %v", err)
	}
}

// TestMeshErrUnreachableClassification: the in-process mesh reports downed
// nodes and cut links through the same sentinel.
func TestMeshErrUnreachableClassification(t *testing.T) {
	mesh := NewMesh(0)
	defer mesh.Close()
	a, b := mesh.Endpoint("a"), mesh.Endpoint("b")
	if _, err := b.Listen("b", func(*wire.Envelope) *wire.Envelope { return nil }); err != nil {
		t.Fatal(err)
	}
	mesh.SetDown("b", true)
	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("send to downed node: err = %v, want ErrUnreachable", err)
	}
	mesh.SetDown("b", false)
	mesh.Partition("a", "b", true)
	if _, err := a.Request("b", &wire.Envelope{Kind: wire.KindPoll}, 100*time.Millisecond); !errors.Is(err, ErrUnreachable) {
		t.Errorf("request across cut link: err = %v, want ErrUnreachable", err)
	}
}

func listenAddr(impl, label string) string {
	if impl == "tcp" {
		return "127.0.0.1:0"
	}
	return label
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func BenchmarkMeshSend(b *testing.B) {
	mesh := NewMesh(0)
	defer mesh.Close()
	a := mesh.Endpoint("a")
	a.Listen("a", func(*wire.Envelope) *wire.Envelope { return nil })
	srv := mesh.Endpoint("b")
	var count atomic.Int64
	srv.Listen("b", func(*wire.Envelope) *wire.Envelope { count.Add(1); return nil })
	env := &wire.Envelope{Kind: wire.KindForward, Body: make([]byte, 64)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a.Send("b", env) != nil {
			// inbound queue full: let the drain goroutine catch up
			time.Sleep(time.Microsecond)
		}
	}
	_ = fmt.Sprint(count.Load())
}

// TestTCPWriteCoalescing verifies that with FlushInterval set frames are
// still all delivered (by the background flusher), and that a Close pushes
// out any frames still buffered.
func TestTCPWriteCoalescing(t *testing.T) {
	server := NewTCP()
	defer server.Close()
	var got atomic.Int64
	addr, err := server.Listen("127.0.0.1:0", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind == wire.KindForward {
			got.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCP()
	client.FlushInterval = 2 * time.Millisecond
	for i := 0; i < 200; i++ {
		if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward, From: 1, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return got.Load() == 200 })

	// A final burst immediately followed by Close must not lose frames:
	// Close flushes before tearing down.
	for i := 0; i < 50; i++ {
		if err := client.Send(addr, &wire.Envelope{Kind: wire.KindForward, From: 1, Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	waitFor(t, func() bool { return got.Load() == 250 })
}

// TestSendCopies pins the Copying capability: TCP copies bodies on Send (so
// pooled buffers may be recycled), the mesh does not (it queues envelopes by
// reference).
func TestSendCopies(t *testing.T) {
	tcp := NewTCP()
	defer tcp.Close()
	if !SendCopies(tcp) {
		t.Error("TCP transport should report SendCopies")
	}
	mesh := NewMesh(0)
	defer mesh.Close()
	if SendCopies(mesh.Endpoint("a")) {
		t.Error("mesh endpoint must not report SendCopies: it retains bodies")
	}
}
