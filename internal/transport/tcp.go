package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/wire"
)

// TCP is the production transport: length-framed envelopes over TCP.
// One-way sends share a persistent, automatically redialed connection per
// destination; requests use short-lived connections so responses need no
// correlation IDs (table pulls and subscribes are rare compared to
// forwarding traffic).
type TCP struct {
	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// FlushInterval, when positive, enables write coalescing: Send buffers
	// frames in each connection's bufio.Writer and a background flusher
	// flushes dirty connections every FlushInterval, so a burst of sends to
	// one destination costs one syscall instead of one per frame. Zero (the
	// default) flushes every frame immediately. Set before the first Send.
	FlushInterval time.Duration
	// IdleTimeout, when positive, closes accepted server-side connections
	// that deliver no frame for this long — without it a dead peer pins its
	// read goroutine and buffers forever, which matters once an edge holds
	// many thousands of sessions. A peer finding its connection gone sees
	// the usual ErrUnreachable on its next send (and redials); deadline
	// errors never leak into Request's timeout classification, which applies
	// only to the short-lived request connections this setting does not
	// touch. Zero (the default) keeps accepted connections open until the
	// peer closes them. Set before the first Listen.
	IdleTimeout time.Duration

	mu        sync.Mutex
	listeners []net.Listener
	conns     map[string]*sendConn
	accepted  map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup

	flusherOnce sync.Once
	flusherStop chan struct{}

	// FramesSent / BytesSent count one-way frames written (including
	// buffered frames awaiting a coalesced flush); FramesReceived /
	// BytesReceived count inbound frames handled. Byte figures are frame
	// bodies, the dominant term — headers are a fixed few bytes per frame.
	FramesSent     metrics.Counter
	BytesSent      metrics.Counter
	FramesReceived metrics.Counter
	BytesReceived  metrics.Counter
	// IdleClosed counts accepted connections dropped by IdleTimeout.
	IdleClosed metrics.Counter
}

type sendConn struct {
	mu    sync.Mutex
	conn  net.Conn
	bw    *bufio.Writer
	dirty bool // buffered frames awaiting a flush
}

// NewTCP returns an unconnected TCP transport.
func NewTCP() *TCP {
	return &TCP{
		DialTimeout: 2 * time.Second,
		conns:       make(map[string]*sendConn),
		accepted:    make(map[net.Conn]struct{}),
		flusherStop: make(chan struct{}),
	}
}

// SendCopies implements Copying: Send writes env.Body into the connection's
// buffered writer before returning, so callers may recycle the body.
func (t *TCP) SendCopies() bool { return true }

// Listen implements Transport: it serves h on addr ("host:port"; ":0"
// chooses a free port) and returns the bound address.
func (t *TCP) Listen(addr string, h Handler) (string, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return "", ErrClosed
	}
	t.mu.Unlock()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	t.mu.Lock()
	t.listeners = append(t.listeners, ln)
	t.mu.Unlock()
	t.wg.Add(1)
	go t.acceptLoop(ln, h)
	return ln.Addr().String(), nil
}

func (t *TCP) acceptLoop(ln net.Listener, h Handler) {
	defer t.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(conn, h)
	}
}

// serveConn handles one inbound connection: frames are processed in order;
// request kinds produce exactly one response frame each.
func (t *TCP) serveConn(conn net.Conn, h Handler) {
	defer t.wg.Done()
	defer conn.Close()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.accepted[conn] = struct{}{}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	for {
		if t.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(t.IdleTimeout)); err != nil {
				return
			}
		}
		env, err := wire.ReadFrame(br)
		if err != nil {
			if isTimeout(err) {
				t.IdleClosed.Add(1)
			}
			return // EOF, idle timeout or protocol error: drop the connection
		}
		t.FramesReceived.Add(1)
		t.BytesReceived.Add(int64(len(env.Body)))
		if resp := h(env); resp != nil {
			if err := wire.WriteFrame(bw, resp); err != nil {
				return
			}
		}
	}
}

// getSendConn returns (dialing if necessary) the pooled connection to addr.
func (t *TCP) getSendConn(addr string) (*sendConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	sc, ok := t.conns[addr]
	if !ok {
		sc = &sendConn{}
		t.conns[addr] = sc
	}
	t.mu.Unlock()

	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		sc.conn = conn
		sc.bw = bufio.NewWriter(conn)
	}
	return sc, nil
}

// Send implements Transport with one redial retry on a stale pooled
// connection. With FlushInterval > 0 the frame is left in the connection's
// write buffer for the background flusher; otherwise it is flushed inline.
func (t *TCP) Send(addr string, env *wire.Envelope) error {
	coalesce := t.FlushInterval > 0
	if coalesce {
		t.flusherOnce.Do(func() {
			t.mu.Lock()
			if !t.closed {
				t.wg.Add(1)
				go t.flushLoop(t.FlushInterval)
			}
			t.mu.Unlock()
		})
	}
	for attempt := 0; attempt < 2; attempt++ {
		sc, err := t.getSendConn(addr)
		if err != nil {
			return err
		}
		sc.mu.Lock()
		if sc.conn == nil {
			sc.mu.Unlock()
			continue
		}
		if coalesce {
			err = wire.WriteFrameBuffered(sc.bw, env)
			if err == nil {
				sc.dirty = true
			}
		} else {
			err = wire.WriteFrame(sc.bw, env)
		}
		if err != nil {
			sc.conn.Close()
			sc.conn = nil
			sc.dirty = false
			sc.mu.Unlock()
			continue
		}
		sc.mu.Unlock()
		t.FramesSent.Add(1)
		t.BytesSent.Add(int64(len(env.Body)))
		return nil
	}
	return fmt.Errorf("%w: send to %s failed after retry", ErrUnreachable, addr)
}

// flushLoop flushes every dirty pooled connection each interval — the write
// coalescer that turns N frames per interval into one syscall per
// destination.
func (t *TCP) flushLoop(interval time.Duration) {
	defer t.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-t.flusherStop:
			t.flushAll()
			return
		case <-ticker.C:
			t.flushAll()
		}
	}
}

func (t *TCP) flushAll() {
	t.mu.Lock()
	scs := make([]*sendConn, 0, len(t.conns))
	for _, sc := range t.conns {
		scs = append(scs, sc)
	}
	t.mu.Unlock()
	for _, sc := range scs {
		sc.mu.Lock()
		if sc.dirty && sc.conn != nil {
			if err := sc.bw.Flush(); err != nil {
				sc.conn.Close()
				sc.conn = nil
			}
			sc.dirty = false
		}
		sc.mu.Unlock()
	}
}

// Request implements Transport over a short-lived connection.
func (t *TCP) Request(addr string, env *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	defer conn.Close()
	deadline := time.Now().Add(timeout)
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if err := wire.WriteFrame(conn, env); err != nil {
		if isTimeout(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: write to %s: %v", ErrUnreachable, addr, err)
	}
	resp, err := wire.ReadFrame(bufio.NewReader(conn))
	if err != nil {
		if errors.Is(err, io.EOF) {
			// The peer closed without answering: to the caller that is the
			// same as never having reached it.
			return nil, fmt.Errorf("%w: no response from %s for %v", ErrUnreachable, addr, env.Kind)
		}
		if isTimeout(err) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: read from %s: %v", ErrUnreachable, addr, err)
	}
	return resp, nil
}

// isTimeout reports whether err is a network timeout (deadline exceeded).
// Timeouts stay unwrapped so callers can tell a slow peer from a dead one.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Close implements Transport: it flushes coalesced writes, stops all
// listeners and closes pooled connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// Push out buffered frames before tearing connections down, then stop
	// the flusher (its shutdown flush finds nothing dirty).
	t.flushAll()
	close(t.flusherStop)
	t.mu.Lock()
	for _, ln := range t.listeners {
		ln.Close()
	}
	for conn := range t.accepted {
		conn.Close()
	}
	for _, sc := range t.conns {
		sc.mu.Lock()
		if sc.conn != nil {
			sc.conn.Close()
			sc.conn = nil
		}
		sc.mu.Unlock()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
