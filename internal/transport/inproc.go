package transport

import (
	"fmt"
	"sync"
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/wire"
)

// Mesh is an in-process transport fabric: a registry of endpoints connected
// by virtual links. All endpoints created from one Mesh can reach each
// other. The Mesh supports fault injection — dropping a node's links or
// partitioning pairs — and counts bytes for overhead accounting.
type Mesh struct {
	mu        sync.RWMutex
	handlers  map[string]Handler
	queues    map[string]chan queued // per-destination ordered delivery
	cut       map[[2]string]bool     // directional partitions
	down      map[string]bool
	delay     time.Duration
	bytesSent metrics.Counter
	closed    bool
	wg        sync.WaitGroup
	nextAuto  int
}

type queued struct {
	env *wire.Envelope
}

// NewMesh creates an empty fabric. delay is the simulated per-message
// latency (0 for immediate delivery).
func NewMesh(delay time.Duration) *Mesh {
	return &Mesh{
		handlers: make(map[string]Handler),
		queues:   make(map[string]chan queued),
		cut:      make(map[[2]string]bool),
		down:     make(map[string]bool),
		delay:    delay,
	}
}

// BytesSent returns the total payload bytes moved through the mesh.
func (m *Mesh) BytesSent() int64 { return m.bytesSent.Value() }

// Endpoint returns a Transport view of the mesh for one logical node. The
// from label is used for partition bookkeeping.
func (m *Mesh) Endpoint(from string) Transport {
	return &meshEndpoint{mesh: m, from: from}
}

// SetDown marks an endpoint crashed (true) or restored (false): all its
// traffic, in and out, is dropped.
func (m *Mesh) SetDown(addr string, down bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[addr] = down
}

// Unbind releases a bound address: its serving goroutine drains and exits,
// and the address may be bound again (node restart). Safe against
// concurrent sends — send holds the mesh read lock while enqueueing, so the
// queue is only closed when no send is in flight.
func (m *Mesh) Unbind(addr string) {
	m.mu.Lock()
	q, ok := m.queues[addr]
	if ok {
		delete(m.queues, addr)
		delete(m.handlers, addr)
	}
	m.mu.Unlock()
	if ok {
		close(q)
	}
}

// Partition cuts (or heals) the directional link a→b.
func (m *Mesh) Partition(a, b string, cut bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[[2]string{a, b}] = cut
}

// PartitionBoth cuts (or heals) both directions between a and b.
func (m *Mesh) PartitionBoth(a, b string, cut bool) {
	m.Partition(a, b, cut)
	m.Partition(b, a, cut)
}

// Close shuts the fabric down; subsequent operations fail with ErrClosed.
func (m *Mesh) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	for _, q := range m.queues {
		close(q)
	}
	m.mu.Unlock()
	m.wg.Wait()
	return nil
}

func (m *Mesh) listen(addr string, h Handler) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return "", ErrClosed
	}
	if addr == "" || addr == ":0" {
		m.nextAuto++
		addr = fmt.Sprintf("inproc-%d", m.nextAuto)
	}
	if _, dup := m.handlers[addr]; dup {
		return "", fmt.Errorf("transport: address %q already bound", addr)
	}
	m.handlers[addr] = h
	q := make(chan queued, 4096)
	m.queues[addr] = q
	m.wg.Add(1)
	go m.serve(addr, h, q)
	return addr, nil
}

// serve drains one endpoint's ordered delivery queue.
func (m *Mesh) serve(addr string, h Handler, q chan queued) {
	defer m.wg.Done()
	for item := range q {
		if m.delay > 0 {
			time.Sleep(m.delay)
		}
		m.mu.RLock()
		dead := m.down[addr]
		m.mu.RUnlock()
		if dead {
			continue
		}
		h(item.env)
	}
}

// reachable reports whether from can currently reach to.
func (m *Mesh) reachable(from, to string) bool {
	if m.closed || m.down[from] || m.down[to] || m.cut[[2]string{from, to}] {
		return false
	}
	_, ok := m.handlers[to]
	return ok
}

func (m *Mesh) send(from, to string, env *wire.Envelope) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return ErrClosed
	}
	if !m.reachable(from, to) {
		return fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	m.bytesSent.Add(int64(wire.FrameSize(env)))
	select {
	case m.queues[to] <- queued{env: env}:
		return nil
	default:
		return fmt.Errorf("transport: %s inbound queue full", to)
	}
}

func (m *Mesh) request(from, to string, env *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	m.mu.RLock()
	if m.closed {
		m.mu.RUnlock()
		return nil, ErrClosed
	}
	if !m.reachable(from, to) {
		m.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	h := m.handlers[to]
	m.bytesSent.Add(int64(wire.FrameSize(env)))
	m.mu.RUnlock()

	type result struct{ resp *wire.Envelope }
	ch := make(chan result, 1)
	go func() {
		if m.delay > 0 {
			time.Sleep(m.delay)
		}
		ch <- result{resp: h(env)}
	}()
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	select {
	case r := <-ch:
		if r.resp == nil {
			return nil, fmt.Errorf("transport: no response from %s for %v", to, env.Kind)
		}
		m.bytesSent.Add(int64(wire.FrameSize(r.resp)))
		return r.resp, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("transport: request to %s timed out", to)
	}
}

// meshEndpoint adapts a Mesh to the Transport interface for one node.
type meshEndpoint struct {
	mesh *Mesh
	from string
}

// Listen implements Transport.
func (e *meshEndpoint) Listen(addr string, h Handler) (string, error) {
	bound, err := e.mesh.listen(addr, h)
	if err == nil && (e.from == "" || e.from == ":0") {
		e.from = bound
	}
	return bound, err
}

// Send implements Transport.
func (e *meshEndpoint) Send(addr string, env *wire.Envelope) error {
	return e.mesh.send(e.from, addr, env)
}

// Request implements Transport.
func (e *meshEndpoint) Request(addr string, env *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	return e.mesh.request(e.from, addr, env, timeout)
}

// Close implements Transport. Closing an endpoint marks it down; the mesh
// itself stays up for other endpoints.
func (e *meshEndpoint) Close() error {
	e.mesh.SetDown(e.from, true)
	return nil
}
