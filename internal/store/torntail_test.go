package store

import (
	"bytes"
	"fmt"
	"os"
	"testing"
)

// buildSegment writes n records of varied size and kind into a single
// segment file at dir, returning the framed bytes and each record's end
// offset within the file.
func buildSegment(t testing.TB, dir string, n int) (data []byte, ends []int) {
	t.Helper()
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i%26)}, i%37)
		data = AppendRecord(data, uint8(1+i%7), payload)
		ends = append(ends, len(data))
	}
	if err := os.WriteFile(segmentName(dir, 0), data, 0o644); err != nil {
		t.Fatal(err)
	}
	return data, ends
}

// TestTornTailEveryOffset truncates a segment at every byte offset and
// requires recovery to stop cleanly at the last whole record: the replayed
// stream is exactly the longest record-aligned prefix of the truncation,
// never an error, never corrupt data.
func TestTornTailEveryOffset(t *testing.T) {
	refDir := t.TempDir()
	data, ends := buildSegment(t, refDir, 30)

	wholeBefore := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(segmentName(dir, 0), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got []byte
		stats, err := Recover(dir, nil, func(kind uint8, payload []byte) error {
			got = AppendRecord(got, kind, payload)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: recovery errored: %v", cut, err)
		}
		want := wholeBefore(cut)
		if stats.Records != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, stats.Records, want)
		}
		if !bytes.Equal(got, data[:stats.Bytes]) {
			t.Fatalf("cut=%d: replayed bytes diverge from the written prefix", cut)
		}
		atBoundary := cut == 0 || (want > 0 && ends[want-1] == cut)
		if stats.TornTail == atBoundary {
			t.Fatalf("cut=%d: TornTail=%v at boundary=%v", cut, stats.TornTail, atBoundary)
		}
	}
}

// TestTornTailOpenTruncatesAndResumes: Open after a torn tail must cut the
// partial record off and append the next record directly after the last
// whole one, so a second recovery sees prefix + new tail with no gap.
func TestTornTailOpenTruncatesAndResumes(t *testing.T) {
	dir := t.TempDir()
	data, ends := buildSegment(t, dir, 10)
	cut := ends[6] + 3 // 7 whole records plus a torn partial 8th
	if cut >= len(data) {
		t.Fatal("test geometry: cut past end")
	}
	if err := os.WriteFile(segmentName(dir, 0), data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s := openFor(t, dir, nil, nil)
	if rec := s.Recovery(); !rec.TornTail || rec.Records != 7 {
		t.Fatalf("open-time recovery: %+v", rec)
	}
	if err := s.Append(42, []byte("resumed")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var r replayed
	stats, err := Recover(dir, r.restore, r.apply)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TornTail {
		t.Fatal("torn tail survived the truncating open")
	}
	if len(r.records) != 8 || r.records[7] != "42:resumed" {
		t.Fatalf("post-resume replay: %v", r.records)
	}
}

// FuzzRecoverTornTail feeds arbitrary bytes in as a WAL segment. Recovery
// must never panic and never surface corrupt data: every record it replays
// must re-encode to exactly the prefix of the file it consumed.
func FuzzRecoverTornTail(f *testing.F) {
	var seed []byte
	for i := 0; i < 5; i++ {
		seed = AppendRecord(seed, uint8(i), bytes.Repeat([]byte{byte(i)}, i*3))
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-2])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(segmentName(dir, 0), data, 0o644); err != nil {
			t.Skip()
		}
		var replayedBytes []byte
		stats, err := Recover(dir, nil, func(kind uint8, payload []byte) error {
			replayedBytes = AppendRecord(replayedBytes, kind, payload)
			return nil
		})
		if err != nil {
			return // explicit rejection is always acceptable
		}
		if stats.Bytes > int64(len(data)) {
			t.Fatalf("claims %d bytes replayed of a %d-byte file", stats.Bytes, len(data))
		}
		if !bytes.Equal(replayedBytes, data[:stats.Bytes]) {
			t.Fatal("replayed records do not re-encode to the consumed prefix")
		}
	})
}

func BenchmarkAppend(b *testing.B) {
	for _, pol := range []Fsync{FsyncNever, FsyncInterval} {
		b.Run(pol.String(), func(b *testing.B) {
			s, err := Open(Options{Dir: b.TempDir(), Fsync: pol})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			payload := bytes.Repeat([]byte("x"), 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("record-%06d", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(dir, nil, func(uint8, []byte) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
