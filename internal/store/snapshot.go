package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// kindSnapshot frames the snapshot payload inside its own file; the value
// never collides with caller record kinds because snapshots live outside
// the WAL stream.
const kindSnapshot uint8 = 0

// Snapshot folds the caller's serialized state into a new snapshot and
// compacts every WAL segment it covers. The write is atomic (temp file,
// sync, rename): a crash at any point leaves either the previous snapshot
// chain or the new one, never a half-written snapshot that recovery would
// trust. payload is typically a record stream built with AppendRecord and
// restored through WalkRecords with the same apply function as the WAL.
func (s *Store) Snapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	// Rotate first so the snapshot boundary lands exactly on a segment
	// boundary: everything before the fresh segment is covered.
	if err := s.rotateLocked(); err != nil {
		return err
	}
	base := s.seq

	tmp := filepath.Join(s.opts.Dir, "snapshot.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	framed := AppendRecord(nil, kindSnapshot, payload)
	if _, err := f.Write(framed); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, snapshotName(s.opts.Dir, base)); err != nil {
		return err
	}
	s.snapSeq = base
	s.sinceSnap = 0
	s.Snapshots.Add(1)
	s.compactLocked()
	return nil
}

// compactLocked removes snapshots and segments wholly behind the newest
// snapshot. Removal failures are ignored: stale files are re-candidates on
// the next snapshot, and recovery skips anything a newer snapshot covers.
func (s *Store) compactLocked() {
	snaps, segs, _ := scanDir(s.opts.Dir)
	for _, b := range snaps {
		if b < s.snapSeq {
			_ = os.Remove(snapshotName(s.opts.Dir, b))
		}
	}
	for _, b := range segs {
		if b < s.snapSeq {
			_ = os.Remove(segmentName(s.opts.Dir, b))
		}
	}
}

// scanDir lists snapshot and segment base sequences in dir, each sorted
// ascending.
func scanDir(dir string) (snaps, segs []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		var ext string
		switch {
		case strings.HasSuffix(name, ".wal"):
			ext = ".wal"
		case strings.HasSuffix(name, ".snap"):
			ext = ".snap"
		default:
			continue
		}
		base, perr := strconv.ParseUint(strings.TrimSuffix(name, ext), 16, 64)
		if perr != nil {
			continue // foreign file; not ours to interpret
		}
		if ext == ".wal" {
			segs = append(segs, base)
		} else {
			snaps = append(snaps, base)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}
