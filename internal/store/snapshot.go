package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// kindSnapshot frames the snapshot payload inside its own file; the value
// never collides with caller record kinds because snapshots live outside
// the WAL stream.
const kindSnapshot uint8 = 0

// Snapshot folds the caller's serialized state into a new snapshot and
// compacts every WAL segment it covers. The write is atomic (temp file,
// sync, rename, directory sync): a crash at any point leaves either the
// previous snapshot chain or the new one, never a half-written snapshot
// that recovery would trust. payload is typically a record stream built
// with AppendRecord and restored through WalkRecords with the same apply
// function as the WAL. On a Degraded store Snapshot refuses with ErrShed
// (there is no non-durable snapshot); on a Failed store it returns
// ErrFailed. A snapshot I/O fault does not change health — the WAL chain
// is untouched and the temp file is discarded.
func (s *Store) Snapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: snapshot on closed store")
	}
	switch s.health {
	case Failed:
		return s.failedErrLocked()
	case Degraded:
		return ErrShed
	}
	// Rotate first so the snapshot boundary lands exactly on a segment
	// boundary: everything before the fresh segment is covered.
	if err := s.rotateLocked(); err != nil {
		return err
	}
	if s.health != Healthy {
		return ErrShed // rotation fault degraded the store
	}
	base := s.seq

	tmp := filepath.Join(s.opts.Dir, "snapshot.tmp")
	f, err := s.fs.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		s.WriteErrors.Add(1)
		return err
	}
	framed := AppendRecord(nil, kindSnapshot, payload)
	if _, err := f.Write(framed); err != nil {
		s.WriteErrors.Add(1)
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		s.SyncErrors.Add(1)
		_ = f.Close()
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := s.fs.Rename(tmp, snapshotName(s.opts.Dir, base)); err != nil {
		s.WriteErrors.Add(1)
		_ = s.fs.Remove(tmp)
		return err
	}
	// Persist the directory entry: without this, a crash can make the
	// rename vanish and recovery would silently fall back to an older
	// snapshot plus segments that compaction may be about to delete.
	if err := s.fs.SyncDir(s.opts.Dir); err != nil {
		s.SyncErrors.Add(1)
		return err
	}
	s.snapSeq = base
	s.sinceSnap = 0
	s.Snapshots.Add(1)
	s.compactLocked()
	return nil
}

// compactLocked removes snapshots and segments wholly behind the newest
// snapshot. Removal failures are ignored: stale files are re-candidates on
// the next snapshot, and recovery skips anything a newer snapshot covers.
func (s *Store) compactLocked() {
	snaps, segs, _ := scanDir(s.fs, s.opts.Dir)
	for _, b := range snaps {
		if b < s.snapSeq {
			_ = s.fs.Remove(snapshotName(s.opts.Dir, b))
		}
	}
	for _, b := range segs {
		if b < s.snapSeq {
			_ = s.fs.Remove(segmentName(s.opts.Dir, b))
		}
	}
}

// scanDir lists snapshot and segment base sequences in dir, each sorted
// ascending.
func scanDir(fs FS, dir string) (snaps, segs []uint64, err error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		var ext string
		switch {
		case strings.HasSuffix(name, ".wal"):
			ext = ".wal"
		case strings.HasSuffix(name, ".snap"):
			ext = ".snap"
		default:
			continue
		}
		base, perr := strconv.ParseUint(strings.TrimSuffix(name, ext), 16, 64)
		if perr != nil {
			continue // foreign file; not ours to interpret
		}
		if ext == ".wal" {
			segs = append(segs, base)
		} else {
			snaps = append(snaps, base)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return snaps, segs, nil
}
