package store

import "bluedove/internal/telemetry"

// Register publishes the store's counters and open-time recovery figures
// under the node's registry, in the store.* dotted namespace.
func (s *Store) Register(r *telemetry.Registry) {
	r.Counter("store.wal_appends", "WAL records appended", &s.Appends)
	r.Counter("store.wal_bytes", "framed WAL bytes written", &s.AppendBytes)
	r.Counter("store.fsyncs", "explicit segment fsyncs", &s.Fsyncs)
	r.Counter("store.snapshots", "snapshots written", &s.Snapshots)
	r.Counter("store.write_errors", "failed segment/snapshot writes", &s.WriteErrors)
	r.Counter("store.sync_errors", "failed fsyncs", &s.SyncErrors)
	r.Counter("store.repairs", "poisoned segments repaired by reopen-and-rewrite", &s.Repairs)
	r.Counter("store.dropped_appends", "records accepted without durability while degraded", &s.DroppedAppends)
	r.Gauge("store.health", "durability health (0 healthy, 1 degraded, 2 failed)",
		func(int64) float64 { return float64(s.Health()) })
	r.Gauge("store.recovery_seconds", "wall time of the open-time recovery pass",
		func(int64) float64 { return s.recovery.Duration.Seconds() })
	r.Gauge("store.recovery_records", "WAL records replayed at open",
		func(int64) float64 { return float64(s.recovery.Records) })
	r.Gauge("store.recovery_snapshot_bytes", "snapshot payload bytes restored at open",
		func(int64) float64 { return float64(s.recovery.SnapshotBytes) })
}
