package store

import (
	"errors"
	"fmt"
)

// Health is the store's durability state. It only ever moves forward
// (Healthy → Degraded or Failed); recovery back to Healthy is a process
// restart through the normal Open path.
type Health uint8

const (
	// Healthy: appends reach the WAL and the configured fsync policy holds.
	Healthy Health = iota
	// Degraded: the disk failed and the configured policy elected to keep
	// the node alive without durability (DegradeToMemory accepts appends
	// non-durably and counts them in DroppedAppends; Shed refuses them with
	// ErrShed). The advertised guarantee is weakened and must be alarmed.
	Degraded
	// Failed: the store refuses all work (FailStop, or an unrecoverable
	// rotation fault). Every operation returns ErrFailed wrapping the first
	// cause; the owning node should crash into its recovery path.
	Failed
)

// String names the state (the store.health gauge renders these as 0/1/2).
func (h Health) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Failed:
		return "failed"
	default:
		return "healthy"
	}
}

// FailPolicy selects what a store does when a disk fault cannot be repaired
// by reopening the segment.
type FailPolicy uint8

const (
	// FailStop (the default) transitions to Failed: all operations error and
	// the node is expected to crash and rejoin through recovery. Acked work
	// is never silently non-durable.
	FailStop FailPolicy = iota
	// DegradeToMemory transitions to Degraded and keeps accepting appends
	// without persistence. Every such append — plus any append staged but
	// not yet fsynced when the fault hit — is counted in DroppedAppends, so
	// the weakened guarantee is exactly accounted, never silent.
	DegradeToMemory
	// Shed transitions to Degraded and refuses new persistent work with
	// ErrShed, letting the caller surface a typed overload-style rejection.
	Shed
)

// String names the policy (the -fail-policy flag values).
func (p FailPolicy) String() string {
	switch p {
	case DegradeToMemory:
		return "degrade"
	case Shed:
		return "shed"
	default:
		return "failstop"
	}
}

// ParseFailPolicy parses a -fail-policy flag value.
func ParseFailPolicy(s string) (FailPolicy, error) {
	switch s {
	case "failstop", "":
		return FailStop, nil
	case "degrade":
		return DegradeToMemory, nil
	case "shed":
		return Shed, nil
	}
	return 0, fmt.Errorf("store: unknown fail policy %q (want failstop|degrade|shed)", s)
}

// ErrFailed marks every operation on a store that has transitioned to
// Failed; errors.Is-match it and inspect Cause for the original disk fault.
var ErrFailed = errors.New("store: failed")

// ErrShed rejects persistent work on a store degraded under the Shed
// policy. Callers translate it into their overload-style typed rejection.
var ErrShed = errors.New("store: shedding persistent work")
