package store

import (
	"io"
	"os"
)

// File is the slice of *os.File the store needs from an open segment,
// snapshot, or temp file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the store's filesystem seam. Every disk touch — segment and
// snapshot I/O, directory scans, recovery reads — goes through one of these
// methods, so a fault-injecting implementation (internal/chaos) can exercise
// partial storage failures deterministically. The zero-configuration default
// is OS, a direct passthrough to package os.
type FS interface {
	// OpenFile opens name with the given flag and permissions.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory chain.
	MkdirAll(path string, perm os.FileMode) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs a directory, making created/renamed/removed entries
	// durable. POSIX requires this for the entry itself to survive a crash:
	// fsyncing the file alone does not persist its directory entry.
	SyncDir(path string) error
}

// OS is the passthrough FS used when Options.FS is nil.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (OS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
