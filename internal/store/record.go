// Record framing for the durable-state engine. Every byte that reaches disk
// — WAL appends and snapshot payloads alike — is wrapped in one frame:
//
//	uint32  length (kind byte + payload, excluding this prefix and the CRC)
//	uint32  CRC32-C over the kind byte and payload
//	uint8   record kind (caller-defined)
//	...     payload
//
// The layout follows internal/wire's conventions (little-endian,
// length-prefixed, hand-rolled over encoding/binary) so the two codecs read
// the same way, but adds the checksum: disk contents outlive the process
// that wrote them, and a torn or bit-flipped record must be detected rather
// than decoded.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// MaxRecord bounds one record's framed size; larger declared lengths are
// rejected as corruption before any allocation (mirrors wire.MaxFrame).
const MaxRecord = 16 << 20

// recHeader is the fixed prefix: length + CRC.
const recHeader = 4 + 4

// ErrCorrupt reports a record or segment chain that cannot have been
// produced by a clean writer: a bad checksum away from a segment's tail, a
// gap in the segment sequence, or an unreadable snapshot.
var ErrCorrupt = errors.New("store: corrupt journal")

// ErrTooLarge reports an append whose framed size exceeds MaxRecord.
var ErrTooLarge = errors.New("store: record exceeds size limit")

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends one framed record to dst and returns the extended
// slice. It is exported so state snapshots can be built as record streams
// and replayed through the same apply function as the WAL (see WalkRecords).
func AppendRecord(dst []byte, kind uint8, payload []byte) []byte {
	n := 1 + len(payload)
	if recHeader+n > MaxRecord {
		panic(fmt.Errorf("%w: %d bytes", ErrTooLarge, n))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(n))
	crc := crc32.Update(crc32.Checksum([]byte{kind}, castagnoli), castagnoli, payload)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	dst = append(dst, kind)
	return append(dst, payload...)
}

// readRecord decodes the record starting at off. It returns the kind, the
// payload (aliasing data), and the offset past the record. ok is false when
// the bytes at off do not hold one whole, checksum-valid record — the torn
// tail a crashed writer leaves, or corruption.
func readRecord(data []byte, off int) (kind uint8, payload []byte, next int, ok bool) {
	if off+recHeader > len(data) {
		return 0, nil, off, false
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	if n < 1 || recHeader+n > MaxRecord || off+recHeader+n > len(data) {
		return 0, nil, off, false
	}
	want := binary.LittleEndian.Uint32(data[off+4:])
	body := data[off+recHeader : off+recHeader+n]
	if crc32.Checksum(body, castagnoli) != want {
		return 0, nil, off, false
	}
	return body[0], body[1:], off + recHeader + n, true
}

// WalkRecords replays every whole record in data through fn, in order. It
// returns ErrCorrupt when trailing bytes remain after the last whole record
// — use it for snapshot payloads and other buffers that were written
// atomically and therefore admit no torn tail. fn errors abort the walk.
func WalkRecords(data []byte, fn func(kind uint8, payload []byte) error) error {
	off := 0
	for off < len(data) {
		kind, payload, next, ok := readRecord(data, off)
		if !ok {
			return fmt.Errorf("%w: invalid record at offset %d", ErrCorrupt, off)
		}
		if err := fn(kind, payload); err != nil {
			return err
		}
		off = next
	}
	return nil
}
