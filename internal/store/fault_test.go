package store

import (
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
)

// hookFS is a scriptable FS: each hook, when non-nil, may veto the matching
// operation before it reaches the real filesystem.
type hookFS struct {
	OS
	mu        sync.Mutex
	onWrite   func(path string) error
	onSync    func(path string) error
	onSyncDir func(path string) error
	onOpen    func(path string, flag int) error
	syncDirs  []string // every SyncDir call, in order
	opens     int
}

func (h *hookFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	h.mu.Lock()
	h.opens++
	hook := h.onOpen
	h.mu.Unlock()
	if hook != nil {
		if err := hook(name, flag); err != nil {
			return nil, err
		}
	}
	f, err := h.OS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &hookFile{fs: h, path: name, f: f}, nil
}

func (h *hookFS) SyncDir(path string) error {
	h.mu.Lock()
	h.syncDirs = append(h.syncDirs, path)
	hook := h.onSyncDir
	h.mu.Unlock()
	if hook != nil {
		if err := hook(path); err != nil {
			return err
		}
	}
	return h.OS.SyncDir(path)
}

func (h *hookFS) dirSyncs() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.syncDirs)
}

type hookFile struct {
	fs   *hookFS
	path string
	f    File
}

func (f *hookFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	hook := f.fs.onWrite
	f.fs.mu.Unlock()
	if hook != nil {
		if err := hook(f.path); err != nil {
			// Torn write: half the buffer lands before the fault.
			_, _ = f.f.Write(p[:len(p)/2])
			return len(p) / 2, err
		}
	}
	return f.f.Write(p)
}

func (f *hookFile) Sync() error {
	f.fs.mu.Lock()
	hook := f.fs.onSync
	f.fs.mu.Unlock()
	if hook != nil {
		if err := hook(f.path); err != nil {
			return err
		}
	}
	return f.f.Sync()
}

func (f *hookFile) Close() error { return f.f.Close() }

var errInjected = errors.New("injected fault")

// failSegmentsOnce fails the first n matching operations on .wal files.
func failSegmentsOnce(n int) func(string) error {
	var mu sync.Mutex
	return func(path string) error {
		if !strings.HasSuffix(path, ".wal") {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if n > 0 {
			n--
			return errInjected
		}
		return nil
	}
}

// A single failed fsync is repaired by reopening the segment and rewriting
// the staged frames — the acked record survives recovery, the fd is never
// re-synced, and the store stays Healthy.
func TestFsyncFailureRepaired(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{onSync: failSegmentsOnce(1)}
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
	})
	if err := s.Append(1, []byte("acked")); err != nil {
		t.Fatalf("append with repairable fsync fault: %v", err)
	}
	if got := s.Health(); got != Healthy {
		t.Fatalf("health = %v, want healthy after repair", got)
	}
	if got := s.Repairs.Value(); got != 1 {
		t.Fatalf("repairs = %d, want 1", got)
	}
	if got := s.SyncErrors.Value(); got != 1 {
		t.Fatalf("sync_errors = %d, want 1", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var r replayed
	if _, err := Recover(dir, r.restore, r.apply); err != nil {
		t.Fatal(err)
	}
	if len(r.records) != 1 || r.records[0] != "1:acked" {
		t.Fatalf("recovered %v, want the acked record", r.records)
	}
}

// A torn write (half the frame lands, then EIO) is repaired by truncating
// back to the last durable byte and rewriting; recovery sees no garbage.
func TestTornWriteRepaired(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{onWrite: failSegmentsOnce(1)}
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
	})
	if err := s.Append(1, []byte("first")); err == nil || !errors.Is(err, errInjected) {
		// The very first write is the injected one; repair rewrites it.
		if err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := s.Append(2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var r replayed
	rec, err := Recover(dir, r.restore, r.apply)
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail {
		t.Fatal("torn tail survived a repaired torn write")
	}
	if len(r.records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(r.records))
	}
}

// When repair fails too, FailStop (the default) fails the store: the
// faulting append and every later operation return ErrFailed, and the
// poisoned fd is never re-synced (observable as a reopen attempt).
func TestFailStopPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
	})
	opensBefore := fs.opens
	// Every fsync on every segment fails: the repair's fresh fd fails too.
	fs.mu.Lock()
	fs.onSync = func(path string) error {
		if strings.HasSuffix(path, ".wal") {
			return errInjected
		}
		return nil
	}
	fs.mu.Unlock()
	if err := s.Append(1, []byte("x")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append = %v, want ErrFailed", err)
	}
	if got := s.Health(); got != Failed {
		t.Fatalf("health = %v, want failed", got)
	}
	if fs.opens <= opensBefore {
		t.Fatal("no reopen attempted: the poisoned fd must not be re-synced")
	}
	if err := s.Append(2, []byte("y")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after failure = %v, want ErrFailed", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrFailed) {
		t.Fatalf("sync after failure = %v, want ErrFailed", err)
	}
	if err := s.Snapshot(nil); !errors.Is(err, ErrFailed) {
		t.Fatalf("snapshot after failure = %v, want ErrFailed", err)
	}
	_ = s.Close()
}

// DegradeToMemory keeps accepting appends after an unrepairable fault, and
// DroppedAppends counts every record accepted without durability — the
// exact size of the weakened guarantee.
func TestDegradeToMemoryAccounting(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
		o.Policy = DegradeToMemory
	})
	if err := s.Append(1, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.onSync = func(path string) error {
		if strings.HasSuffix(path, ".wal") {
			return errInjected
		}
		return nil
	}
	fs.mu.Unlock()
	for i := 0; i < 5; i++ {
		if err := s.Append(2, []byte("lost")); err != nil {
			t.Fatalf("degraded append %d: %v", i, err)
		}
	}
	if got := s.Health(); got != Degraded {
		t.Fatalf("health = %v, want degraded", got)
	}
	if got := s.DroppedAppends.Value(); got != 5 {
		t.Fatalf("dropped = %d, want exactly the 5 non-durable accepts", got)
	}
	if s.SnapshotDue() {
		t.Fatal("degraded store must not ask for snapshots")
	}
	if err := s.Snapshot(nil); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded snapshot = %v, want ErrShed", err)
	}
	_ = s.Close()

	// Only the durable record survives; the dropped counter said so.
	var r replayed
	if _, err := Recover(dir, r.restore, r.apply); err != nil {
		t.Fatal(err)
	}
	if len(r.records) != 1 || r.records[0] != "1:durable" {
		t.Fatalf("recovered %v, want exactly the durable record", r.records)
	}
}

// Shed refuses new persistent work with ErrShed once degraded.
func TestShedRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
		o.Policy = Shed
	})
	fs.mu.Lock()
	fs.onSync = func(path string) error {
		if strings.HasSuffix(path, ".wal") {
			return errInjected
		}
		return nil
	}
	fs.mu.Unlock()
	if err := s.Append(1, []byte("x")); !errors.Is(err, ErrShed) {
		t.Fatalf("faulting append = %v, want ErrShed", err)
	}
	if err := s.Append(1, []byte("y")); !errors.Is(err, ErrShed) {
		t.Fatalf("degraded append = %v, want ErrShed", err)
	}
	if got := s.Health(); got != Degraded {
		t.Fatalf("health = %v, want degraded", got)
	}
	_ = s.Close()
}

// Satellite: if openSegmentLocked fails during rotation (old segment
// already closed), the store transitions to Failed deterministically —
// appends must never hit a closed fd.
func TestRotateOpenFailureFailsStore(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) {
		o.SegmentBytes = 64 // rotate almost immediately
		o.FS = fs
	})
	fs.mu.Lock()
	fs.onOpen = func(path string, flag int) error {
		if strings.HasSuffix(path, ".wal") && flag&os.O_EXCL != 0 {
			return errInjected // every new segment create fails
		}
		return nil
	}
	fs.mu.Unlock()
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		err = s.Append(1, make([]byte, 48))
	}
	if !errors.Is(err, ErrFailed) {
		t.Fatalf("append across failed rotation = %v, want ErrFailed", err)
	}
	if got := s.Health(); got != Failed {
		t.Fatalf("health = %v, want failed", got)
	}
	// Deterministically failed, not a closed-fd error on a later append.
	if err := s.Append(1, []byte("z")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append after failed rotation = %v, want ErrFailed", err)
	}
	_ = s.Close()
}

// Satellite: the parent directory is fsynced after segment create, after
// rotation's new segment, and after the snapshot rename — a freshly
// created entry can't vanish across a crash.
func TestDirectoryFsyncPoints(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) {
		o.SegmentBytes = 64
		o.FS = fs
	})
	if fs.dirSyncs() < 1 {
		t.Fatal("no directory fsync after initial segment create")
	}
	after := fs.dirSyncs()
	if err := s.Append(1, make([]byte, 80)); err != nil { // forces rotation
		t.Fatal(err)
	}
	if fs.dirSyncs() <= after {
		t.Fatal("no directory fsync after rotation's segment create")
	}
	after = fs.dirSyncs()
	if err := s.Snapshot([]byte("state")); err != nil {
		t.Fatal(err)
	}
	if fs.dirSyncs() <= after {
		t.Fatal("no directory fsync after snapshot rename")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// A SyncDir failure at segment create is a hard error: the segment entry
// is not durable, so the store must not pretend it is.
func TestDirSyncFailureFailsOpen(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{onSyncDir: func(string) error { return errInjected }}
	_, err := Open(Options{Dir: dir, FS: fs})
	if !errors.Is(err, errInjected) {
		t.Fatalf("open with failing SyncDir = %v, want the injected fault", err)
	}
}

// A snapshot I/O fault leaves health untouched (the WAL chain is intact)
// and discards the temp file.
func TestSnapshotFaultKeepsHealth(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	s := openFor(t, dir, nil, func(o *Options) { o.FS = fs })
	if err := s.Append(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.onWrite = func(path string) error {
		if strings.HasSuffix(path, "snapshot.tmp") {
			return errInjected
		}
		return nil
	}
	fs.mu.Unlock()
	if err := s.Snapshot([]byte("state")); !errors.Is(err, errInjected) {
		t.Fatalf("snapshot = %v, want injected fault", err)
	}
	if got := s.Health(); got != Healthy {
		t.Fatalf("health = %v, want healthy after snapshot-only fault", got)
	}
	if _, err := os.Stat(dir + "/snapshot.tmp"); !os.IsNotExist(err) {
		t.Fatal("failed snapshot left its temp file behind")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// OnHealth fires once per transition with the causing fault.
func TestOnHealthCallback(t *testing.T) {
	dir := t.TempDir()
	fs := &hookFS{}
	got := make(chan Health, 2)
	s := openFor(t, dir, nil, func(o *Options) {
		o.Fsync = FsyncAlways
		o.FS = fs
		o.OnHealth = func(h Health, cause error) {
			if !errors.Is(cause, errInjected) {
				t.Errorf("cause = %v, want the injected fault", cause)
			}
			got <- h
		}
	})
	fs.mu.Lock()
	fs.onSync = func(path string) error {
		if strings.HasSuffix(path, ".wal") {
			return errInjected
		}
		return nil
	}
	fs.mu.Unlock()
	if err := s.Append(1, []byte("x")); !errors.Is(err, ErrFailed) {
		t.Fatalf("append = %v, want ErrFailed", err)
	}
	if h := <-got; h != Failed {
		t.Fatalf("callback health = %v, want failed", h)
	}
	if !errors.Is(s.Cause(), errInjected) {
		t.Fatalf("cause = %v, want the injected fault", s.Cause())
	}
	_ = s.Close()
}

func TestParseFailPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want FailPolicy
		ok   bool
	}{
		{"failstop", FailStop, true},
		{"", FailStop, true},
		{"degrade", DegradeToMemory, true},
		{"shed", Shed, true},
		{"explode", 0, false},
	}
	for _, c := range cases {
		got, err := ParseFailPolicy(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFailPolicy(%q) = %v, %v; want %v ok=%v", c.in, got, err, c.want, c.ok)
		}
	}
	for _, p := range []FailPolicy{FailStop, DegradeToMemory, Shed} {
		rt, err := ParseFailPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v: got %v, %v", p, rt, err)
		}
	}
}
