package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// replayed collects one recovery pass's observations.
type replayed struct {
	snapshot []byte
	records  []string // "kind:payload"
}

func (r *replayed) restore(p []byte) error {
	r.snapshot = append([]byte(nil), p...)
	return nil
}

func (r *replayed) apply(kind uint8, payload []byte) error {
	r.records = append(r.records, fmt.Sprintf("%d:%s", kind, payload))
	return nil
}

func openFor(t *testing.T, dir string, r *replayed, mut func(*Options)) *Store {
	t.Helper()
	opts := Options{Dir: dir, Fsync: FsyncNever}
	if r != nil {
		opts.Restore = r.restore
		opts.Apply = r.apply
	}
	if mut != nil {
		mut(&opts)
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendRecoverRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, nil)
	for i := 0; i < 100; i++ {
		if err := s.Append(uint8(1+i%3), []byte(fmt.Sprintf("rec-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Appends.Value(); got != 100 {
		t.Fatalf("Appends = %d, want 100", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var r replayed
	s2 := openFor(t, dir, &r, nil)
	defer s2.Close()
	if len(r.records) != 100 {
		t.Fatalf("replayed %d records, want 100", len(r.records))
	}
	if r.records[0] != "1:rec-000" || r.records[99] != fmt.Sprintf("%d:rec-099", 1+99%3) {
		t.Fatalf("replay order wrong: first %q last %q", r.records[0], r.records[99])
	}
	if r.snapshot != nil {
		t.Fatalf("no snapshot written, yet one restored: %q", r.snapshot)
	}
	if rec := s2.Recovery(); rec.Records != 100 || rec.TornTail || rec.SnapshotLoaded {
		t.Fatalf("recovery stats: %+v", rec)
	}
	// Appends continue after the replayed tail.
	if err := s2.Append(9, []byte("after")); err != nil {
		t.Fatal(err)
	}
	if got := s2.Seq(); got != 101 {
		t.Fatalf("seq after recovery+append = %d, want 101", got)
	}
}

func TestSnapshotCompactsAndRestores(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, func(o *Options) { o.SegmentBytes = 256 })
	for i := 0; i < 50; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("old-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot([]byte("state-at-50")); err != nil {
		t.Fatal(err)
	}
	if got := s.Snapshots.Value(); got != 1 {
		t.Fatalf("Snapshots = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		if err := s.Append(2, []byte(fmt.Sprintf("new-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Compaction must have removed the pre-snapshot segments (several, at
	// 256-byte rotation) leaving only the post-snapshot tail.
	snaps, segs, err := scanDir(OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v", snaps)
	}
	if len(segs) != 1 || segs[0] != snaps[0] {
		t.Fatalf("segments on disk %v not compacted to the snapshot boundary %v", segs, snaps)
	}

	var r replayed
	s2 := openFor(t, dir, &r, nil)
	defer s2.Close()
	if string(r.snapshot) != "state-at-50" {
		t.Fatalf("restored snapshot %q", r.snapshot)
	}
	if len(r.records) != 5 || r.records[0] != "2:new-0" {
		t.Fatalf("replayed tail: %v", r.records)
	}
	if rec := s2.Recovery(); !rec.SnapshotLoaded || rec.Records != 5 {
		t.Fatalf("recovery stats: %+v", rec)
	}
}

func TestSnapshotDueArmsAndResets(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, func(o *Options) { o.SnapshotEvery = 10 })
	defer s.Close()
	for i := 0; i < 9; i++ {
		if err := s.Append(1, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.SnapshotDue() {
		t.Fatal("due after 9 of 10 appends")
	}
	if err := s.Append(1, nil); err != nil {
		t.Fatal(err)
	}
	if !s.SnapshotDue() {
		t.Fatal("not due after 10 appends")
	}
	if err := s.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	if s.SnapshotDue() {
		t.Fatal("still due right after a snapshot")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, func(o *Options) { o.SegmentBytes = 128 })
	for i := 0; i < 40; i++ {
		if err := s.Append(1, []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := scanDir(OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("rotation produced %d segments, want several", len(segs))
	}
	var r replayed
	s2 := openFor(t, dir, &r, nil)
	defer s2.Close()
	if len(r.records) != 40 {
		t.Fatalf("replayed %d across segments, want 40", len(r.records))
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Fsync{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openFor(t, dir, nil, func(o *Options) {
				o.Fsync = pol
				o.Interval = 5 * time.Millisecond
			})
			for i := 0; i < 20; i++ {
				if err := s.Append(1, []byte("x")); err != nil {
					t.Fatal(err)
				}
			}
			switch pol {
			case FsyncAlways:
				if got := s.Fsyncs.Value(); got != 20 {
					t.Fatalf("FsyncAlways synced %d times, want 20", got)
				}
			case FsyncInterval:
				deadline := time.Now().Add(2 * time.Second)
				for s.Fsyncs.Value() == 0 && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if s.Fsyncs.Value() == 0 {
					t.Fatal("interval syncer never fired")
				}
			case FsyncNever:
				if got := s.Fsyncs.Value(); got != 0 {
					t.Fatalf("FsyncNever synced %d times", got)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestParseFsync(t *testing.T) {
	for in, want := range map[string]Fsync{
		"always": FsyncAlways, "interval": FsyncInterval, "": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsync(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsync(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsync("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestWalkRecordsRoundtrip(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendRecord(buf, uint8(i), []byte(fmt.Sprintf("p%d", i)))
	}
	n := 0
	if err := WalkRecords(buf, func(kind uint8, payload []byte) error {
		if int(kind) != n || string(payload) != fmt.Sprintf("p%d", n) {
			t.Fatalf("record %d decoded as kind=%d payload=%q", n, kind, payload)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("walked %d records, want 10", n)
	}
	// A truncated stream is corruption for atomically-written buffers.
	if err := WalkRecords(buf[:len(buf)-1], func(uint8, []byte) error { return nil }); err == nil {
		t.Fatal("torn record stream accepted")
	}
}

func TestCorruptMidChainRejected(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, func(o *Options) { o.SegmentBytes = 64 })
	for i := 0; i < 20; i++ {
		if err := s.Append(1, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, segs, err := scanDir(OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need 2+ segments, have %d", len(segs))
	}
	// Flip a payload byte in the FIRST segment: corruption away from the
	// tail must fail recovery loudly, not silently drop the chain.
	path := segmentName(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Recover(dir, nil, nil); err == nil {
		t.Fatal("mid-chain corruption accepted")
	}
}

func TestRecoverSkipsUnreadableNewestSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openFor(t, dir, nil, nil)
	if err := s.Append(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Plant a newer, unreadable snapshot; recovery must fall back to the
	// good one and still replay the tail.
	if err := os.WriteFile(filepath.Join(dir, "ffffffffffffff00.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	var r replayed
	if _, err := Recover(dir, r.restore, r.apply); err != nil {
		t.Fatal(err)
	}
	if string(r.snapshot) != "good" || len(r.records) != 1 || r.records[0] != "1:b" {
		t.Fatalf("fallback recovery: snapshot=%q records=%v", r.snapshot, r.records)
	}
}
