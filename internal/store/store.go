// Package store is BlueDove's durable-state engine (paper Section VI names
// persistence as the key future work): a segmented, CRC32-C-framed
// append-only write-ahead log with configurable fsync policy, plus
// point-in-time snapshots with segment compaction and a generic recovery
// replay. Stateful roles journal their mutations as typed records, restore
// the newest snapshot and replay the tail on restart, and periodically fold
// the journal into a fresh snapshot.
//
// On-disk layout (one directory per node role):
//
//	<base>.wal   WAL segment; <base> is the 16-hex-digit sequence number of
//	             the segment's first record. Records are framed per record.go.
//	<base>.snap  state snapshot covering every record with sequence < <base>;
//	             one framed record holding the role-defined payload.
//
// Snapshots rotate the WAL first, so segment boundaries always align with
// snapshot coverage: recovery restores the newest valid snapshot, then
// replays every segment with base >= the snapshot's, stopping cleanly at a
// torn tail (a crash mid-append leaves a partial record; the checksum
// rejects it and Open truncates it away before appending again).
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bluedove/internal/metrics"
)

// Fsync selects when appended records are forced to stable storage.
type Fsync uint8

const (
	// FsyncInterval (the default) syncs dirty segments on a background
	// ticker (Options.Interval): bounded loss window, near-zero append cost.
	FsyncInterval Fsync = iota
	// FsyncAlways syncs after every append: no acknowledged record is ever
	// lost to a crash, at one fsync per append.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache: fastest, loses the
	// cache on power failure (process crashes alone lose nothing — the
	// kernel holds the writes).
	FsyncNever
)

// String names the policy (the -fsync flag values).
func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses a -fsync flag value.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
}

// Options parameterizes a Store.
type Options struct {
	// Dir is the journal directory (created if missing); required.
	Dir string
	// Fsync is the sync policy (default FsyncInterval).
	Fsync Fsync
	// Interval is the background sync cadence under FsyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment at this size (default 4 MiB).
	SegmentBytes int
	// SnapshotEvery arms SnapshotDue after this many appends since the last
	// snapshot (default 8192). The store cannot serialize the caller's
	// state, so the caller polls SnapshotDue and calls Snapshot itself.
	SnapshotEvery int
	// Restore, when non-nil, receives the newest valid snapshot payload
	// before WAL replay during Open.
	Restore func(snapshot []byte) error
	// Apply, when non-nil, receives every replayed WAL record during Open,
	// in append order.
	Apply func(kind uint8, payload []byte) error
}

func (o *Options) defaults() error {
	if o.Dir == "" {
		return fmt.Errorf("store: Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8192
	}
	return nil
}

// RecoveryStats describes what one recovery pass found and replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot was restored.
	SnapshotLoaded bool
	// SnapshotBytes is the restored snapshot payload size.
	SnapshotBytes int
	// Records is the number of WAL records replayed after the snapshot.
	Records int
	// Bytes is the framed size of the replayed records.
	Bytes int64
	// TornTail reports whether the final segment ended in a partial or
	// checksum-invalid record (the normal signature of a mid-append crash).
	TornTail bool
	// Duration is the wall time of the recovery pass.
	Duration time.Duration
}

// Store is an open durable-state journal. Append, Snapshot and Close are
// safe for concurrent use.
type Store struct {
	opts Options

	mu        sync.Mutex
	f         *os.File // active segment
	segBase   uint64   // sequence of the active segment's first record
	segSize   int64
	seq       uint64 // next record sequence
	snapSeq   uint64 // base covered by the newest snapshot
	dirty     bool
	sinceSnap int
	buf       []byte // reusable frame scratch
	closed    bool

	stop chan struct{}
	wg   sync.WaitGroup

	recovery RecoveryStats

	// Appends counts records written to the WAL.
	Appends metrics.Counter
	// AppendBytes counts framed WAL bytes written.
	AppendBytes metrics.Counter
	// Fsyncs counts explicit syncs (per-append under FsyncAlways, per dirty
	// tick under FsyncInterval, plus rotation and close syncs).
	Fsyncs metrics.Counter
	// Snapshots counts snapshots written.
	Snapshots metrics.Counter
}

// Open recovers the journal in opts.Dir (restoring the newest snapshot into
// opts.Restore and replaying the WAL tail into opts.Apply), truncates any
// torn tail, and arms the store for appending.
func Open(opts Options) (*Store, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{opts: opts, stop: make(chan struct{})}

	start := time.Now()
	rec, err := recoverDir(opts.Dir, opts.Restore, opts.Apply, true)
	if err != nil {
		return nil, err
	}
	s.recovery = rec.RecoveryStats
	s.recovery.Duration = time.Since(start)
	s.seq = rec.nextSeq
	s.snapSeq = rec.snapSeq

	// Continue the last segment when one survived recovery; otherwise start
	// a fresh one at the current sequence.
	if rec.lastSegment != "" {
		f, err := os.OpenFile(rec.lastSegment, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		s.f, s.segBase, s.segSize = f, rec.lastBase, rec.lastSize
	} else if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}

	if s.opts.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// Recovery returns the stats of the Open-time recovery pass.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Seq returns the next record sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// segmentName returns the path of the segment starting at base.
func segmentName(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.wal", base))
}

// snapshotName returns the path of the snapshot covering records < base.
func snapshotName(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.snap", base))
}

// openSegmentLocked creates the segment whose base is the current sequence.
func (s *Store) openSegmentLocked() error {
	f, err := os.OpenFile(segmentName(s.opts.Dir, s.seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.f, s.segBase, s.segSize = f, s.seq, 0
	return nil
}

// rotateLocked syncs and closes the active segment and opens a fresh one at
// the current sequence. A still-empty segment is already aligned and kept.
func (s *Store) rotateLocked() error {
	if s.segSize == 0 {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.Fsyncs.Add(1)
	s.dirty = false
	if err := s.f.Close(); err != nil {
		return err
	}
	return s.openSegmentLocked()
}

// Append journals one record. Under FsyncAlways it returns only after the
// record is on stable storage.
func (s *Store) Append(kind uint8, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if recHeader+1+len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	s.buf = AppendRecord(s.buf[:0], kind, payload)
	if _, err := s.f.Write(s.buf); err != nil {
		return err
	}
	s.segSize += int64(len(s.buf))
	s.seq++
	s.sinceSnap++
	s.dirty = true
	s.Appends.Add(1)
	s.AppendBytes.Add(int64(len(s.buf)))
	if s.opts.Fsync == FsyncAlways {
		if err := s.f.Sync(); err != nil {
			return err
		}
		s.Fsyncs.Add(1)
		s.dirty = false
	}
	if s.segSize >= int64(s.opts.SegmentBytes) {
		return s.rotateLocked()
	}
	return nil
}

// SnapshotDue reports whether enough appends have accumulated since the
// last snapshot that the caller should fold its state into a new one.
func (s *Store) SnapshotDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sinceSnap >= s.opts.SnapshotEvery
}

// Sync forces dirty appends to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed || !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.Fsyncs.Add(1)
	s.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background syncer.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			_ = s.syncLocked()
			s.mu.Unlock()
		}
	}
}

// Close syncs and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.syncLocked()
	s.closed = true
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
