// Package store is BlueDove's durable-state engine (paper Section VI names
// persistence as the key future work): a segmented, CRC32-C-framed
// append-only write-ahead log with configurable fsync policy, plus
// point-in-time snapshots with segment compaction and a generic recovery
// replay. Stateful roles journal their mutations as typed records, restore
// the newest snapshot and replay the tail on restart, and periodically fold
// the journal into a fresh snapshot.
//
// On-disk layout (one directory per node role):
//
//	<base>.wal   WAL segment; <base> is the 16-hex-digit sequence number of
//	             the segment's first record. Records are framed per record.go.
//	<base>.snap  state snapshot covering every record with sequence < <base>;
//	             one framed record holding the role-defined payload.
//
// Snapshots rotate the WAL first, so segment boundaries always align with
// snapshot coverage: recovery restores the newest valid snapshot, then
// replays every segment with base >= the snapshot's, stopping cleanly at a
// torn tail (a crash mid-append leaves a partial record; the checksum
// rejects it and Open truncates it away before appending again).
//
// Disk faults are first-class: every filesystem touch goes through the FS
// seam (fault-injectable from internal/chaos), and the store runs an
// explicit Healthy → Degraded/Failed health machine. A failed write or
// fsync poisons the active segment — the kernel clears the dirty-page error
// state on the failing fsync, so re-Syncing the same fd would silently
// report success for data that never reached the platter. The store instead
// closes the poisoned fd, reopens the segment, truncates back to the last
// known-durable size, rewrites the staged unsynced frames, and fsyncs the
// fresh fd. If that repair fails too, Options.Policy decides: FailStop,
// DegradeToMemory, or Shed (see FailPolicy).
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bluedove/internal/metrics"
)

// Fsync selects when appended records are forced to stable storage.
type Fsync uint8

const (
	// FsyncInterval (the default) syncs dirty segments on a background
	// ticker (Options.Interval): bounded loss window, near-zero append cost.
	FsyncInterval Fsync = iota
	// FsyncAlways syncs after every append: no acknowledged record is ever
	// lost to a crash, at one fsync per append.
	FsyncAlways
	// FsyncNever leaves syncing to the OS page cache: fastest, loses the
	// cache on power failure (process crashes alone lose nothing — the
	// kernel holds the writes).
	FsyncNever
)

// String names the policy (the -fsync flag values).
func (f Fsync) String() string {
	switch f {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsync parses a -fsync flag value.
func ParseFsync(s string) (Fsync, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always|interval|never)", s)
}

// Options parameterizes a Store.
type Options struct {
	// Dir is the journal directory (created if missing); required.
	Dir string
	// Fsync is the sync policy (default FsyncInterval).
	Fsync Fsync
	// Interval is the background sync cadence under FsyncInterval
	// (default 100ms).
	Interval time.Duration
	// SegmentBytes rotates the active segment at this size (default 4 MiB).
	SegmentBytes int
	// SnapshotEvery arms SnapshotDue after this many appends since the last
	// snapshot (default 8192). The store cannot serialize the caller's
	// state, so the caller polls SnapshotDue and calls Snapshot itself.
	SnapshotEvery int
	// Restore, when non-nil, receives the newest valid snapshot payload
	// before WAL replay during Open.
	Restore func(snapshot []byte) error
	// Apply, when non-nil, receives every replayed WAL record during Open,
	// in append order.
	Apply func(kind uint8, payload []byte) error
	// FS is the filesystem seam (default OS passthrough). internal/chaos
	// provides a deterministic fault-injecting implementation.
	FS FS
	// Policy decides what an unrepairable disk fault does to the store
	// (default FailStop).
	Policy FailPolicy
	// OnHealth, when non-nil, is invoked (on its own goroutine, store
	// unlocked) after every health transition with the new state and the
	// fault that caused it.
	OnHealth func(Health, error)
}

func (o *Options) defaults() error {
	if o.Dir == "" {
		return fmt.Errorf("store: Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 8192
	}
	if o.FS == nil {
		o.FS = OS{}
	}
	return nil
}

// RecoveryStats describes what one recovery pass found and replayed.
type RecoveryStats struct {
	// SnapshotLoaded reports whether a snapshot was restored.
	SnapshotLoaded bool
	// SnapshotBytes is the restored snapshot payload size.
	SnapshotBytes int
	// Records is the number of WAL records replayed after the snapshot.
	Records int
	// Bytes is the framed size of the replayed records.
	Bytes int64
	// TornTail reports whether the final segment ended in a partial or
	// checksum-invalid record (the normal signature of a mid-append crash).
	TornTail bool
	// Duration is the wall time of the recovery pass.
	Duration time.Duration
}

// Store is an open durable-state journal. Append, Snapshot and Close are
// safe for concurrent use.
type Store struct {
	opts Options

	mu        sync.Mutex
	fs        FS
	f         File   // active segment (nil once Degraded/Failed)
	segBase   uint64 // sequence of the active segment's first record
	segSize   int64
	goodSize  int64  // segment bytes known durable (repair truncates here)
	seq       uint64 // next record sequence
	snapSeq   uint64 // base covered by the newest snapshot
	dirty     bool
	sinceSnap int
	buf       []byte // reusable frame scratch
	closed    bool

	health        Health
	cause         error  // first fault behind a non-Healthy state
	pending       []byte // frames written to the segment but not yet fsynced
	pendingFrames int
	pendingLost   bool // pending overflowed its cap; repair is impossible

	stop chan struct{}
	wg   sync.WaitGroup

	recovery RecoveryStats

	// Appends counts records written to the WAL.
	Appends metrics.Counter
	// AppendBytes counts framed WAL bytes written.
	AppendBytes metrics.Counter
	// Fsyncs counts explicit syncs (per-append under FsyncAlways, per dirty
	// tick under FsyncInterval, plus rotation and close syncs).
	Fsyncs metrics.Counter
	// Snapshots counts snapshots written.
	Snapshots metrics.Counter
	// WriteErrors counts failed segment/snapshot writes.
	WriteErrors metrics.Counter
	// SyncErrors counts failed fsyncs.
	SyncErrors metrics.Counter
	// Repairs counts successful poisoned-segment reopen-and-rewrite passes.
	Repairs metrics.Counter
	// DroppedAppends counts records accepted without durability: appends
	// taken while Degraded under DegradeToMemory, plus frames that were
	// staged but unsynced at the moment the store left Healthy. This is the
	// exact size of the weakened guarantee.
	DroppedAppends metrics.Counter
}

// Open recovers the journal in opts.Dir (restoring the newest snapshot into
// opts.Restore and replaying the WAL tail into opts.Apply), truncates any
// torn tail, and arms the store for appending.
func Open(opts Options) (*Store, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{opts: opts, fs: opts.FS, stop: make(chan struct{})}

	start := time.Now()
	rec, err := recoverDir(opts.FS, opts.Dir, opts.Restore, opts.Apply, true)
	if err != nil {
		return nil, err
	}
	s.recovery = rec.RecoveryStats
	s.recovery.Duration = time.Since(start)
	s.seq = rec.nextSeq
	s.snapSeq = rec.snapSeq

	// Continue the last segment when one survived recovery; otherwise start
	// a fresh one at the current sequence.
	if rec.lastSegment != "" {
		f, err := s.fs.OpenFile(rec.lastSegment, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		s.f, s.segBase, s.segSize = f, rec.lastBase, rec.lastSize
		s.goodSize = s.segSize // recovery validated everything up to here
	} else if err := s.openSegmentLocked(); err != nil {
		return nil, err
	}

	if s.opts.Fsync == FsyncInterval {
		s.wg.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// Recovery returns the stats of the Open-time recovery pass.
func (s *Store) Recovery() RecoveryStats { return s.recovery }

// Seq returns the next record sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Health returns the store's durability state.
func (s *Store) Health() Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health
}

// Cause returns the first disk fault behind a non-Healthy state (nil while
// Healthy).
func (s *Store) Cause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cause
}

// setHealthLocked transitions the health machine forward and schedules the
// OnHealth callback. Transitions are one-way: a Degraded store never
// reports Healthy again, and Failed is terminal.
func (s *Store) setHealthLocked(h Health, cause error) {
	if h <= s.health {
		return
	}
	s.health = h
	if s.cause == nil {
		s.cause = cause
	}
	s.dirty = false
	if cb := s.opts.OnHealth; cb != nil {
		c := s.cause
		go cb(h, c)
	}
}

// failedErrLocked is the uniform error for operations on a Failed store.
func (s *Store) failedErrLocked() error {
	return fmt.Errorf("%w: %v", ErrFailed, s.cause)
}

// segmentName returns the path of the segment starting at base.
func segmentName(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.wal", base))
}

// snapshotName returns the path of the snapshot covering records < base.
func snapshotName(dir string, base uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%016x.snap", base))
}

// openSegmentLocked creates the segment whose base is the current sequence
// and fsyncs the directory so the new entry survives a crash.
func (s *Store) openSegmentLocked() error {
	f, err := s.fs.OpenFile(segmentName(s.opts.Dir, s.seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.opts.Dir); err != nil {
		_ = f.Close()
		return err
	}
	s.f, s.segBase, s.segSize, s.goodSize = f, s.seq, 0, 0
	s.pending, s.pendingFrames, s.pendingLost = s.pending[:0], 0, false
	return nil
}

// stagePendingLocked keeps a copy of a written-but-unsynced frame so a
// poisoned segment can be rebuilt. The buffer is capped at SegmentBytes;
// past that, repair is declared impossible and a later fault goes straight
// to the policy.
func (s *Store) stagePendingLocked(frame []byte) {
	if s.pendingLost {
		return
	}
	if len(s.pending)+len(frame) > s.opts.SegmentBytes {
		s.pendingLost = true
		return
	}
	s.pending = append(s.pending, frame...)
	s.pendingFrames++
}

// repairLocked rebuilds the active segment after a poisoned write or fsync:
// close the bad fd, truncate the file back to the last known-durable size,
// reopen, rewrite the staged unsynced frames plus the not-yet-written frame
// (nil on a sync fault), and fsync the fresh fd. On success the segment is
// fully durable again.
func (s *Store) repairLocked(frame []byte) error {
	if s.f != nil {
		_ = s.f.Close() // poisoned; its error state is meaningless now
		s.f = nil
	}
	if s.pendingLost {
		return fmt.Errorf("store: unsynced frames exceed repair buffer")
	}
	path := segmentName(s.opts.Dir, s.segBase)
	if err := s.fs.Truncate(path, s.goodSize); err != nil {
		return err
	}
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	size := s.goodSize
	for _, b := range [][]byte{s.pending, frame} {
		if len(b) == 0 {
			continue
		}
		if _, err := f.Write(b); err != nil {
			_ = f.Close()
			return err
		}
		size += int64(len(b))
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	s.f = f
	s.segSize, s.goodSize = size, size
	s.pending, s.pendingFrames = s.pending[:0], 0
	s.dirty = false
	s.Fsyncs.Add(1)
	return nil
}

// faultLocked handles a failed write or fsync on the active segment. frame
// is the frame that had not yet been written when the fault hit (nil when
// the fault was an fsync of already-written bytes). First a repair is
// attempted; if that fails, Options.Policy decides the store's fate. The
// poisoned fd is never re-Synced. A nil return means the record (if any)
// was accepted — durably after a repair, non-durably and counted under
// DegradeToMemory.
func (s *Store) faultLocked(cause error, frame []byte) error {
	if err := s.repairLocked(frame); err == nil {
		s.Repairs.Add(1)
		return nil
	}
	return s.policyLocked(cause, frame != nil)
}

// policyLocked applies Options.Policy after an unrepairable fault.
// currentDropped marks a record that never reached the segment (a failed
// write) so DegradeToMemory can count it alongside the staged frames.
func (s *Store) policyLocked(cause error, currentDropped bool) error {
	if s.f != nil {
		_ = s.f.Close()
		s.f = nil
	}
	// Best-effort scrub of unsynced bytes: everything past goodSize is
	// about to be counted in DroppedAppends, so it must not resurface in a
	// later recovery and be delivered twice over.
	_ = s.fs.Truncate(segmentName(s.opts.Dir, s.segBase), s.goodSize)
	dropped := int64(s.pendingFrames)
	s.pending, s.pendingFrames = nil, 0
	switch s.opts.Policy {
	case DegradeToMemory:
		s.setHealthLocked(Degraded, cause)
		if currentDropped {
			dropped++ // the current record is accepted without durability
		}
		s.DroppedAppends.Add(dropped)
		return nil
	case Shed:
		s.setHealthLocked(Degraded, cause)
		s.DroppedAppends.Add(dropped) // staged frames lost their durability
		return ErrShed
	default: // FailStop
		s.setHealthLocked(Failed, cause)
		return s.failedErrLocked()
	}
}

// rotateLocked syncs and closes the active segment and opens a fresh one at
// the current sequence. A still-empty segment is already aligned and kept.
func (s *Store) rotateLocked() error {
	if s.segSize == 0 || s.health != Healthy {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.SyncErrors.Add(1)
		if ferr := s.faultLocked(err, nil); ferr != nil {
			return ferr
		}
		if s.health != Healthy {
			return nil // degraded: nothing further to rotate
		}
	} else {
		s.Fsyncs.Add(1)
		s.goodSize = s.segSize
		s.pending, s.pendingFrames = s.pending[:0], 0
	}
	s.dirty = false
	// A Close error after a successful sync cannot lose data; at worst the
	// fd leaks. Continuing is safe, stopping is not (we'd strand the store
	// between segments).
	_ = s.f.Close()
	s.f = nil
	if err := s.openSegmentLocked(); err != nil {
		// The old segment is closed: any further append would hit a closed
		// fd, and "repairing" by reopening the old segment would silently
		// undo the rotation. Apply the policy directly — deterministically
		// Failed under FailStop — instead of failing later with a confusing
		// os.ErrClosed. Pending is empty: the old segment was fully synced.
		return s.policyLocked(fmt.Errorf("store: rotate: %w", err), false)
	}
	return nil
}

// Append journals one record. Under FsyncAlways it returns only after the
// record is on stable storage. On a Degraded store the record is either
// accepted non-durably and counted in DroppedAppends (DegradeToMemory) or
// refused with ErrShed (Shed); on a Failed store every call returns
// ErrFailed.
func (s *Store) Append(kind uint8, payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: append on closed store")
	}
	if recHeader+1+len(payload) > MaxRecord {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	switch s.health {
	case Failed:
		return s.failedErrLocked()
	case Degraded:
		if s.opts.Policy == Shed {
			return ErrShed
		}
		s.seq++
		s.sinceSnap++
		s.DroppedAppends.Add(1)
		return nil
	}
	s.buf = AppendRecord(s.buf[:0], kind, payload)
	durable := false
	if _, err := s.f.Write(s.buf); err != nil {
		s.WriteErrors.Add(1)
		if ferr := s.faultLocked(err, s.buf); ferr != nil {
			return ferr
		}
		if s.health != Healthy {
			// Accepted non-durably (DegradeToMemory); already counted.
			s.seq++
			s.sinceSnap++
			return nil
		}
		durable = true // repaired, which ends in a successful fsync
	} else {
		s.segSize += int64(len(s.buf))
		if s.opts.Fsync == FsyncNever {
			s.goodSize = s.segSize // never synced; written is as good as it gets
		} else {
			s.stagePendingLocked(s.buf)
		}
		s.dirty = true
	}
	s.seq++
	s.sinceSnap++
	s.Appends.Add(1)
	s.AppendBytes.Add(int64(len(s.buf)))
	if s.opts.Fsync == FsyncAlways && !durable {
		if err := s.f.Sync(); err != nil {
			s.SyncErrors.Add(1)
			if ferr := s.faultLocked(err, nil); ferr != nil {
				return ferr
			}
		} else {
			s.Fsyncs.Add(1)
			s.dirty = false
			s.goodSize = s.segSize
			s.pending, s.pendingFrames = s.pending[:0], 0
		}
	}
	if s.health == Healthy && s.segSize >= int64(s.opts.SegmentBytes) {
		return s.rotateLocked()
	}
	return nil
}

// SnapshotDue reports whether enough appends have accumulated since the
// last snapshot that the caller should fold its state into a new one. A
// non-Healthy store never asks for snapshots.
func (s *Store) SnapshotDue() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.health == Healthy && s.sinceSnap >= s.opts.SnapshotEvery
}

// Sync forces dirty appends to stable storage regardless of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.health == Failed {
		return s.failedErrLocked()
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if s.closed || !s.dirty || s.health != Healthy {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		s.SyncErrors.Add(1)
		return s.faultLocked(err, nil)
	}
	s.Fsyncs.Add(1)
	s.dirty = false
	s.goodSize = s.segSize
	s.pending, s.pendingFrames = s.pending[:0], 0
	return nil
}

// syncLoop is the FsyncInterval background syncer. Faults are handled
// inside syncLocked (repair or policy transition), so there is nothing
// further to do with its error here.
func (s *Store) syncLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.mu.Lock()
			_ = s.syncLocked()
			s.mu.Unlock()
		}
	}
}

// Close syncs and closes the journal. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.syncLocked()
	s.closed = true
	if s.f != nil {
		if cerr := s.f.Close(); err == nil {
			err = cerr
		}
		s.f = nil
	}
	return err
}
