package store

import (
	"fmt"
	"path/filepath"
	"time"
)

// recoverResult is recoverDir's full outcome: the public stats plus the
// writer-arming state Open needs.
type recoverResult struct {
	RecoveryStats
	nextSeq     uint64
	snapSeq     uint64
	lastSegment string // active segment to continue appending to ("" = none)
	lastBase    uint64
	lastSize    int64
}

// Recover replays the journal in dir without opening it for writing: the
// newest valid snapshot payload goes to restore, then every whole WAL
// record goes to apply in append order. Replay stops cleanly at a torn
// final-segment tail (reported in the stats); corruption anywhere else
// returns ErrCorrupt. Tools and tests use this; Open uses the same pass and
// then truncates the torn tail before appending.
func Recover(dir string, restore func(snapshot []byte) error, apply func(kind uint8, payload []byte) error) (RecoveryStats, error) {
	start := time.Now()
	rec, err := recoverDir(OS{}, dir, restore, apply, false)
	if err != nil {
		return RecoveryStats{}, err
	}
	rec.Duration = time.Since(start)
	return rec.RecoveryStats, nil
}

// recoverDir is the shared recovery pass. With truncate set (Open), the
// torn tail of the final segment is cut off so appends resume exactly after
// the last whole record, and leftover snapshot temp files are removed.
func recoverDir(fs FS, dir string, restore func([]byte) error, apply func(uint8, []byte) error, truncate bool) (recoverResult, error) {
	var rec recoverResult
	snaps, segs, err := scanDir(fs, dir)
	if err != nil {
		return rec, err
	}
	if truncate {
		_ = fs.Remove(filepath.Join(dir, "snapshot.tmp"))
	}

	// Newest readable snapshot wins; an unreadable one is skipped in favor
	// of an older snapshot plus a longer replay.
	for i := len(snaps) - 1; i >= 0; i-- {
		payload, ok := readSnapshot(fs, snapshotName(dir, snaps[i]))
		if !ok {
			continue
		}
		if restore != nil {
			if err := restore(payload); err != nil {
				return rec, err
			}
		}
		rec.snapSeq = snaps[i]
		rec.SnapshotLoaded = true
		rec.SnapshotBytes = len(payload)
		break
	}

	seq := rec.snapSeq
	for i, base := range segs {
		if base < rec.snapSeq {
			continue // covered by the snapshot; compaction just hasn't caught up
		}
		if base != seq {
			return rec, fmt.Errorf("%w: segment gap, have %016x want %016x", ErrCorrupt, base, seq)
		}
		path := segmentName(dir, base)
		data, err := fs.ReadFile(path)
		if err != nil {
			return rec, err
		}
		off, torn := 0, false
		for off < len(data) {
			kind, payload, next, ok := readRecord(data, off)
			if !ok {
				torn = true
				break
			}
			if apply != nil {
				if err := apply(kind, payload); err != nil {
					return rec, err
				}
			}
			rec.Records++
			rec.Bytes += int64(next - off)
			seq++
			off = next
		}
		if torn {
			if i != len(segs)-1 {
				// A partial record can only be the final segment's tail: a
				// crashed writer never opens a new segment past a torn one.
				return rec, fmt.Errorf("%w: invalid record mid-chain in %s at offset %d",
					ErrCorrupt, filepath.Base(path), off)
			}
			rec.TornTail = true
			if truncate {
				if err := fs.Truncate(path, int64(off)); err != nil {
					return rec, err
				}
			}
		}
		rec.lastSegment, rec.lastBase, rec.lastSize = path, base, int64(off)
	}
	rec.nextSeq = seq
	return rec, nil
}

// readSnapshot loads one snapshot file, returning its payload and whether
// the file holds exactly one checksum-valid record.
func readSnapshot(fs FS, path string) ([]byte, bool) {
	data, err := fs.ReadFile(path)
	if err != nil {
		return nil, false
	}
	kind, payload, next, ok := readRecord(data, 0)
	if !ok || kind != kindSnapshot || next != len(data) {
		return nil, false
	}
	return payload, true
}
