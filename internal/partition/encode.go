package partition

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"bluedove/internal/core"
)

// Wire format (all little-endian):
//
//	uint64  version
//	uint16  k (dimension count)
//	k ×   { uint16 nameLen, name bytes, float64 min, float64 max }
//	k ×   { uint32 n_i, (n_i+1) × float64 boundary, n_i × uint64 owner }
//
// Segment counts are carried per dimension because hot-segment splits give
// dimensions independent segment counts. The table is small — 8 bytes per
// boundary and owner — matching the paper's measured ~60·N bytes per
// dispatcher pull.

// maxWireDims bounds decoded dimension counts to reject corrupt input.
const maxWireDims = 1 << 12

// maxWireMatchers bounds decoded per-dimension segment counts to reject
// corrupt input.
const maxWireMatchers = 1 << 20

// Encode serializes the table.
func (t *Table) Encode() []byte {
	var b bytes.Buffer
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		b.Write(scratch[:])
	}
	putF := func(v float64) { put64(math.Float64bits(v)) }
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		b.Write(scratch[:2])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		b.Write(scratch[:4])
	}

	put64(t.version)
	put16(uint16(t.K()))
	for i := 0; i < t.K(); i++ {
		d := t.space.Dim(i)
		put16(uint16(len(d.Name)))
		b.WriteString(d.Name)
		putF(d.Min)
		putF(d.Max)
	}
	for _, dp := range t.dims {
		put32(uint32(len(dp.Owners)))
		for _, bd := range dp.Boundaries {
			putF(bd)
		}
		for _, o := range dp.Owners {
			put64(uint64(o))
		}
	}
	return b.Bytes()
}

// Decode parses a table previously produced by Encode. It validates all
// structural invariants before returning.
func Decode(data []byte) (*Table, error) {
	r := bytes.NewReader(data)
	var scratch [8]byte
	get := func(n int) ([]byte, error) {
		if _, err := readFull(r, scratch[:n]); err != nil {
			return nil, err
		}
		return scratch[:n], nil
	}
	get64 := func() (uint64, error) {
		bs, err := get(8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(bs), nil
	}
	getF := func() (float64, error) {
		v, err := get64()
		return math.Float64frombits(v), err
	}
	get16 := func() (uint16, error) {
		bs, err := get(2)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(bs), nil
	}
	get32 := func() (uint32, error) {
		bs, err := get(4)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(bs), nil
	}

	version, err := get64()
	if err != nil {
		return nil, fmt.Errorf("partition: decode version: %w", err)
	}
	k, err := get16()
	if err != nil {
		return nil, fmt.Errorf("partition: decode k: %w", err)
	}
	if k == 0 || k > maxWireDims {
		return nil, fmt.Errorf("partition: implausible dimension count %d", k)
	}
	dims := make([]core.Dimension, k)
	for i := range dims {
		nameLen, err := get16()
		if err != nil {
			return nil, err
		}
		name := make([]byte, nameLen)
		if _, err := readFull(r, name); err != nil {
			return nil, err
		}
		min, err := getF()
		if err != nil {
			return nil, err
		}
		max, err := getF()
		if err != nil {
			return nil, err
		}
		dims[i] = core.Dimension{Name: string(name), Min: min, Max: max}
	}
	space, err := core.NewSpace(dims...)
	if err != nil {
		return nil, fmt.Errorf("partition: decode space: %w", err)
	}
	t := &Table{version: version, space: space, dims: make([]DimPartition, k)}
	for i := range t.dims {
		n, err := get32()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > maxWireMatchers {
			return nil, fmt.Errorf("partition: implausible segment count %d", n)
		}
		bounds := make([]float64, n+1)
		for j := range bounds {
			if bounds[j], err = getF(); err != nil {
				return nil, err
			}
		}
		owners := make([]core.NodeID, n)
		for j := range owners {
			v, err := get64()
			if err != nil {
				return nil, err
			}
			owners[j] = core.NodeID(v)
		}
		t.dims[i] = DimPartition{Boundaries: bounds, Owners: owners}
	}
	if err := t.validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func readFull(r *bytes.Reader, p []byte) (int, error) {
	n, err := r.Read(p)
	if n < len(p) {
		return n, errors.New("partition: truncated input")
	}
	return n, err
}
