package partition

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

func nodeIDs(n int) []core.NodeID {
	out := make([]core.NodeID, n)
	for i := range out {
		out[i] = core.NodeID(i + 1)
	}
	return out
}

func mustUniform(t *testing.T, space *core.Space, n int) *Table {
	t.Helper()
	tab, err := NewUniform(space, nodeIDs(n))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewUniformInvariants(t *testing.T) {
	space := core.UniformSpace(4, 1000)
	for _, n := range []int{1, 2, 5, 20, 100} {
		tab := mustUniform(t, space, n)
		if err := tab.validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tab.N() != n || tab.K() != 4 || tab.Version() != 1 {
			t.Fatalf("n=%d: N=%d K=%d V=%d", n, tab.N(), tab.K(), tab.Version())
		}
		if got := len(tab.Matchers()); got != n {
			t.Fatalf("Matchers() len = %d", got)
		}
	}
}

func TestNewUniformErrors(t *testing.T) {
	space := core.UniformSpace(2, 100)
	if _, err := NewUniform(space, nil); err == nil {
		t.Error("empty matcher list accepted")
	}
	if _, err := NewUniform(space, []core.NodeID{1, 2, 1}); err == nil {
		t.Error("duplicate matcher accepted")
	}
}

func TestOwnershipRotatedAcrossDims(t *testing.T) {
	space := core.UniformSpace(3, 900)
	tab := mustUniform(t, space, 3)
	// With rotation, segment 0's owner differs per dimension.
	o0 := tab.Dim(0).Owners[0]
	o1 := tab.Dim(1).Owners[0]
	if o0 == o1 {
		t.Errorf("segment 0 owned by %v on both dim 0 and dim 1; want rotation", o0)
	}
}

func TestSegmentOfBoundaries(t *testing.T) {
	space := core.UniformSpace(1, 100)
	tab := mustUniform(t, space, 4) // boundaries 0,25,50,75,100
	dp := tab.Dim(0)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {24.999, 0}, {25, 1}, {49.999, 1}, {50, 2}, {75, 3}, {99.999, 3},
		{-5, 0},   // clamped low
		{100, 3},  // clamped high (exclusive max)
		{1000, 3}, // clamped far high
	}
	for _, tc := range cases {
		if got := dp.segmentOf(tc.v); got != tc.want {
			t.Errorf("segmentOf(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestSegmentOfNodeAndHasMatcher(t *testing.T) {
	space := core.UniformSpace(2, 100)
	tab := mustUniform(t, space, 4)
	for _, id := range nodeIDs(4) {
		for dim := 0; dim < 2; dim++ {
			r, err := tab.SegmentOf(id, dim)
			if err != nil {
				t.Fatalf("SegmentOf(%v, %d): %v", id, dim, err)
			}
			if r.Empty() {
				t.Fatalf("empty segment for %v dim %d", id, dim)
			}
		}
	}
	if !tab.HasMatcher(2) || tab.HasMatcher(99) {
		t.Error("HasMatcher")
	}
	if _, err := tab.SegmentOf(99, 0); err != ErrUnknownNode {
		t.Errorf("SegmentOf unknown = %v, want ErrUnknownNode", err)
	}
}

func randSub(rng *rand.Rand, space *core.Space, maxLen float64) *core.Subscription {
	preds := make([]core.Range, space.K())
	for i := range preds {
		d := space.Dim(i)
		lo := d.Min + rng.Float64()*d.Extent()
		preds[i] = core.Range{Low: lo, High: lo + rng.Float64()*maxLen + 0.001}
	}
	s := core.NewSubscription(1, preds)
	s.ID = core.SubscriptionID(rng.Uint64())
	return s
}

func randMsgIn(rng *rand.Rand, s *core.Subscription, space *core.Space) *core.Message {
	attrs := make([]float64, space.K())
	for i, p := range s.Predicates {
		d := space.Dim(i)
		r := p.Intersect(core.Range{Low: d.Min, High: d.Max})
		attrs[i] = r.Low + rng.Float64()*r.Length()*0.999
	}
	return core.NewMessage(attrs, nil)
}

// The paper's central correctness claim (Section III-A1): for any message m
// and any subscription S matching m, on EVERY dimension i the candidate
// matcher CM_i(m) has been assigned S along dimension i.
func TestCandidateCompletenessProperty(t *testing.T) {
	space := core.UniformSpace(4, 1000)
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 20} {
		tab := mustUniform(t, space, n)
		for iter := 0; iter < 1500; iter++ {
			s := randSub(rng, space, 300)
			m := randMsgIn(rng, s, space)
			if !s.Matches(m) {
				t.Fatal("generator bug: message must match subscription")
			}
			asg := tab.Assignments(s)
			has := make(map[Assignment]bool, len(asg))
			for _, a := range asg {
				has[a] = true
			}
			cands := tab.CandidatesFor(m)
			if len(cands) != space.K() {
				t.Fatalf("got %d candidates, want %d", len(cands), space.K())
			}
			for _, c := range cands {
				if !has[Assignment{Node: c.Node, Dim: c.Dim}] {
					t.Fatalf("n=%d: candidate %v on dim %d does not store %v (assignments %v)",
						n, c.Node, c.Dim, s, asg)
				}
			}
			for dim := 0; dim < space.K(); dim++ {
				if got := tab.CandidateOn(m, dim); got != cands[dim] {
					t.Fatalf("CandidateOn(%d) = %v, want %v", dim, got, cands[dim])
				}
			}
		}
	}
}

// Assignments must place a subscription at least once per dimension, and a
// predicate covering a whole dimension assigns it to every matcher there.
func TestAssignmentsCoverage(t *testing.T) {
	space := core.UniformSpace(3, 1000)
	tab := mustUniform(t, space, 10)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 500; iter++ {
		s := randSub(rng, space, 400)
		perDim := make(map[int]int)
		for _, a := range tab.Assignments(s) {
			perDim[a.Dim]++
		}
		for dim := 0; dim < 3; dim++ {
			if perDim[dim] < 1 {
				t.Fatalf("subscription %v not assigned on dim %d", s, dim)
			}
		}
	}
	wide := core.NewSubscription(1, []core.Range{{Low: -1e6, High: 1e6}, {Low: 10, High: 20}, {Low: 10, High: 20}})
	perDim := make(map[int]int)
	for _, a := range tab.Assignments(wide) {
		perDim[a.Dim]++
	}
	if perDim[0] != 10 {
		t.Errorf("whole-dimension predicate assigned to %d matchers on dim 0, want 10", perDim[0])
	}
}

func TestAssignmentsReplicated(t *testing.T) {
	space := core.UniformSpace(2, 100)
	// Without rotation a narrow subscription at the "same position" on both
	// dims could land on a single matcher; construct that case directly:
	// with rotation, matcher owning seg j on dim 0 owns seg j-1 on dim 1, so
	// to collide we pick dim0 seg 1 (owner = matchers[1+0]=2) and dim1 seg 0
	// (owner = matchers[0+1]=2).
	tab := mustUniform(t, space, 4)
	s := core.NewSubscription(1, []core.Range{{Low: 30, High: 31}, {Low: 5, High: 6}})
	base := tab.Assignments(s)
	if got := DistinctNodes(base); len(got) != 1 {
		t.Fatalf("setup: expected colliding assignment, got %v", base)
	}
	rep := tab.AssignmentsReplicated(s)
	if got := DistinctNodes(rep); len(got) < 2 {
		t.Fatalf("replication did not add distinct matchers: %v", rep)
	}
	// Non-colliding subscriptions are returned unchanged.
	s2 := core.NewSubscription(1, []core.Range{{Low: 30, High: 31}, {Low: 80, High: 81}})
	if len(tab.AssignmentsReplicated(s2)) != len(tab.Assignments(s2)) {
		t.Error("replication applied to non-colliding subscription")
	}
	// Single-matcher tables cannot replicate.
	tab1 := mustUniform(t, space, 1)
	if len(tab1.AssignmentsReplicated(s)) != len(tab1.Assignments(s)) {
		t.Error("replication applied with N=1")
	}
}

func TestJoin(t *testing.T) {
	space := core.UniformSpace(3, 900)
	tab := mustUniform(t, space, 3)
	victims := []core.NodeID{1, 2, 3}
	newTab, handovers, err := tab.Join(99, victims)
	if err != nil {
		t.Fatal(err)
	}
	if err := newTab.validate(); err != nil {
		t.Fatal(err)
	}
	if newTab.N() != 4 || !newTab.HasMatcher(99) {
		t.Fatalf("N=%d HasMatcher=%v", newTab.N(), newTab.HasMatcher(99))
	}
	if newTab.Version() != tab.Version()+1 {
		t.Errorf("version = %d, want %d", newTab.Version(), tab.Version()+1)
	}
	if len(handovers) != 3 {
		t.Fatalf("handovers = %d, want 3", len(handovers))
	}
	for i, h := range handovers {
		if h.Dim != i || h.To != 99 || h.From != victims[i] {
			t.Errorf("handover %d = %v", i, h)
		}
		seg, err := newTab.SegmentOf(99, i)
		if err != nil || seg != h.Range {
			t.Errorf("new node segment on dim %d = %v, handover range %v", i, seg, h.Range)
		}
		// Victim kept the lower half.
		vseg, _ := newTab.SegmentOf(victims[i], i)
		if vseg.High != h.Range.Low {
			t.Errorf("victim segment %v does not abut handover %v", vseg, h.Range)
		}
	}
	// Original table untouched.
	if tab.N() != 3 || tab.HasMatcher(99) {
		t.Error("Join mutated the receiver")
	}
}

func TestJoinErrors(t *testing.T) {
	space := core.UniformSpace(2, 100)
	tab := mustUniform(t, space, 2)
	if _, _, err := tab.Join(1, []core.NodeID{1, 2}); err == nil {
		t.Error("joining an existing matcher accepted")
	}
	if _, _, err := tab.Join(9, []core.NodeID{1}); err == nil {
		t.Error("wrong victim count accepted")
	}
	if _, _, err := tab.Join(9, []core.NodeID{1, 77}); err == nil {
		t.Error("unknown victim accepted")
	}
}

func TestLeave(t *testing.T) {
	space := core.UniformSpace(2, 100)
	tab := mustUniform(t, space, 4)
	newTab, handovers, err := tab.Leave(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := newTab.validate(); err != nil {
		t.Fatal(err)
	}
	if newTab.N() != 3 || newTab.HasMatcher(2) {
		t.Fatalf("N=%d HasMatcher(2)=%v", newTab.N(), newTab.HasMatcher(2))
	}
	if len(handovers) != 2 {
		t.Fatalf("handovers = %d", len(handovers))
	}
	for _, h := range handovers {
		if h.From != 2 {
			t.Errorf("handover from %v, want 2", h.From)
		}
		// The absorbing node's new segment must cover the handover range.
		seg, err := newTab.SegmentOf(h.To, h.Dim)
		if err != nil {
			t.Fatal(err)
		}
		if !(seg.Low <= h.Range.Low && seg.High >= h.Range.High) {
			t.Errorf("absorber segment %v does not cover %v", seg, h.Range)
		}
	}
}

func TestLeaveFirstSegmentOwner(t *testing.T) {
	space := core.UniformSpace(1, 100)
	tab := mustUniform(t, space, 3)
	first := tab.Dim(0).Owners[0]
	newTab, handovers, err := tab.Leave(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := newTab.validate(); err != nil {
		t.Fatal(err)
	}
	if handovers[0].To != tab.Dim(0).Owners[1] {
		t.Errorf("first-segment leave absorbed by %v, want right neighbor %v",
			handovers[0].To, tab.Dim(0).Owners[1])
	}
}

func TestLeaveErrors(t *testing.T) {
	space := core.UniformSpace(1, 100)
	tab := mustUniform(t, space, 1)
	if _, _, err := tab.Leave(1); err == nil {
		t.Error("removing last matcher accepted")
	}
	tab2 := mustUniform(t, space, 2)
	if _, _, err := tab2.Leave(42); err != ErrUnknownNode {
		t.Errorf("Leave(unknown) = %v, want ErrUnknownNode", err)
	}
}

// Repeated join/leave churn must preserve all invariants and the candidate
// completeness property.
func TestElasticChurnProperty(t *testing.T) {
	space := core.UniformSpace(3, 1000)
	tab := mustUniform(t, space, 4)
	rng := rand.New(rand.NewSource(21))
	next := core.NodeID(100)
	for step := 0; step < 200; step++ {
		if rng.Intn(2) == 0 && tab.N() < 40 {
			victims := make([]core.NodeID, tab.K())
			ms := tab.Matchers()
			for i := range victims {
				victims[i] = ms[rng.Intn(len(ms))]
			}
			nt, _, err := tab.Join(next, victims)
			if err != nil {
				t.Fatalf("step %d join: %v", step, err)
			}
			next++
			tab = nt
		} else if tab.N() > 2 {
			ms := tab.Matchers()
			nt, _, err := tab.Leave(ms[rng.Intn(len(ms))])
			if err != nil {
				t.Fatalf("step %d leave: %v", step, err)
			}
			tab = nt
		}
		if err := tab.validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		// Spot-check completeness.
		s := randSub(rng, space, 300)
		m := randMsgIn(rng, s, space)
		has := make(map[Assignment]bool)
		for _, a := range tab.Assignments(s) {
			has[a] = true
		}
		for _, c := range tab.CandidatesFor(m) {
			if !has[Assignment{Node: c.Node, Dim: c.Dim}] {
				t.Fatalf("step %d: completeness violated", step)
			}
		}
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	space := core.MustSpace(
		core.Dimension{Name: "longitude", Min: -180, Max: 180},
		core.Dimension{Name: "latitude", Min: -90, Max: 90},
		core.Dimension{Name: "speed", Min: 0, Max: 200},
	)
	tab := mustUniform(t, space, 7)
	tab2, _, err := tab.Join(50, []core.NodeID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	data := tab2.Encode()
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != tab2.Version() || got.N() != tab2.N() || got.K() != tab2.K() {
		t.Fatalf("roundtrip mismatch: %v vs %v", got, tab2)
	}
	if !got.Space().Equal(tab2.Space()) {
		t.Error("space mismatch after roundtrip")
	}
	for i := 0; i < got.K(); i++ {
		a, b := got.Dim(i), tab2.Dim(i)
		for j := range a.Boundaries {
			if a.Boundaries[j] != b.Boundaries[j] {
				t.Fatalf("dim %d boundary %d mismatch", i, j)
			}
		}
		for j := range a.Owners {
			if a.Owners[j] != b.Owners[j] {
				t.Fatalf("dim %d owner %d mismatch", i, j)
			}
		}
	}
}

func TestDecodeCorrupt(t *testing.T) {
	space := core.UniformSpace(2, 100)
	tab := mustUniform(t, space, 3)
	data := tab.Encode()
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncated input (%d bytes) accepted", cut)
		}
	}
	// Corrupt matcher count.
	bad := append([]byte(nil), data...)
	bad[0] = 0xFF // version byte — harmless; now break a boundary ordering
	if _, err := Decode(bad); err != nil {
		t.Fatalf("version change should still decode: %v", err)
	}
	// Swap two boundary values to violate ordering.
	// Header: 8 (ver) + 2 (k) + per-dim (2+len(name)+16). Names are "d0","d1".
	hdr := 8 + 2 + 2*(2+2+16) + 4
	bad2 := append([]byte(nil), data...)
	copy(bad2[hdr:hdr+8], data[hdr+8:hdr+16])
	copy(bad2[hdr+8:hdr+16], data[hdr:hdr+8])
	if _, err := Decode(bad2); err == nil {
		t.Error("unordered boundaries accepted")
	}
}

func TestTableString(t *testing.T) {
	tab := mustUniform(t, core.UniformSpace(2, 10), 3)
	if got := tab.String(); got != "table{v1, k=2, n=3, segs=6}" {
		t.Errorf("String() = %q", got)
	}
	h := Handover{Dim: 1, From: 2, To: 3, Range: core.Range{Low: 0, High: 5}}
	if h.String() == "" {
		t.Error("Handover.String empty")
	}
}

// The paper (Section III-A1) claims the probability that all k copies of a
// subscription land on the same matcher is 1/N^(k-1) under uniform
// predicates. Verify the estimate statistically for narrow subscriptions.
func TestCoincidenceProbabilityProperty(t *testing.T) {
	const (
		n       = 10
		k       = 3
		samples = 30000
	)
	space := core.UniformSpace(k, 1000)
	tab := mustUniform(t, space, n)
	rng := rand.New(rand.NewSource(77))
	coincident := 0
	for i := 0; i < samples; i++ {
		preds := make([]core.Range, k)
		for d := range preds {
			lo := rng.Float64() * 999
			preds[d] = core.Range{Low: lo, High: lo + 0.5} // well inside one segment
		}
		s := core.NewSubscription(1, preds)
		if len(DistinctNodes(tab.Assignments(s))) == 1 {
			coincident++
		}
	}
	got := float64(coincident) / samples
	want := 1.0 / (n * n) // 1/N^(k-1) = 0.01
	if got < want/2 || got > want*2 {
		t.Fatalf("coincidence probability = %.4f, want ~%.4f (paper's 1/N^(k-1))", got, want)
	}
	// And AssignmentsReplicated resolves every coincidence it finds.
	for i := 0; i < 2000; i++ {
		preds := make([]core.Range, k)
		for d := range preds {
			lo := rng.Float64() * 999
			preds[d] = core.Range{Low: lo, High: lo + 0.5}
		}
		s := core.NewSubscription(1, preds)
		if len(DistinctNodes(tab.AssignmentsReplicated(s))) < 2 {
			t.Fatal("replication left a coincident subscription on one matcher")
		}
	}
}

// TestPaperFigure2Example encodes the paper's worked example (Figure 2): a
// traffic space with longitude, latitude and speed split into 6 segments
// each. The sample subscription long ∈ [-42,-41) ∧ lat ∈ [70,74) ∧
// speed ∈ [0,25) is stored on exactly 4 matchers: one along longitude, one
// along latitude, and two along speed (its range spans two 20-wide
// segments).
func TestPaperFigure2Example(t *testing.T) {
	space := core.MustSpace(
		core.Dimension{Name: "longitude", Min: -180, Max: 180},
		core.Dimension{Name: "latitude", Min: -90, Max: 90},
		core.Dimension{Name: "speed", Min: 0, Max: 120},
	)
	tab := mustUniform(t, space, 6)
	sub := core.NewSubscription(1, []core.Range{
		{Low: -42, High: -41},
		{Low: 70, High: 74},
		{Low: 0, High: 25},
	})
	if err := sub.Validate(space); err != nil {
		t.Fatal(err)
	}
	asg := tab.Assignments(sub)
	perDim := map[int]int{}
	for _, a := range asg {
		perDim[a.Dim]++
	}
	if len(asg) != 4 || perDim[0] != 1 || perDim[1] != 1 || perDim[2] != 2 {
		t.Fatalf("assignments = %v (per dim %v), want 1+1+2 as in Figure 2", asg, perDim)
	}
	// The paper's matching walk-through: a message in the subscription's
	// cuboid has one candidate per dimension, and each candidate stores the
	// subscription along that dimension.
	msg := core.NewMessage([]float64{-41.5, 72, 12}, nil)
	if !sub.Matches(msg) {
		t.Fatal("example message must match")
	}
	has := map[Assignment]bool{}
	for _, a := range asg {
		has[a] = true
	}
	for _, c := range tab.CandidatesFor(msg) {
		if !has[Assignment{Node: c.Node, Dim: c.Dim}] {
			t.Fatalf("candidate %v on dim %d cannot match the example", c.Node, c.Dim)
		}
	}
}
