package partition

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

func benchTable(b *testing.B, n int) (*Table, *rand.Rand) {
	b.Helper()
	ids := make([]core.NodeID, n)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	tab, err := NewUniform(core.UniformSpace(4, 1000), ids)
	if err != nil {
		b.Fatal(err)
	}
	return tab, rand.New(rand.NewSource(1))
}

func BenchmarkCandidatesFor(b *testing.B) {
	tab, rng := benchTable(b, 20)
	msgs := make([]*core.Message, 256)
	for i := range msgs {
		msgs[i] = core.NewMessage([]float64{rng.Float64() * 1000, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.CandidatesFor(msgs[i%len(msgs)])
	}
}

func BenchmarkAssignments(b *testing.B) {
	tab, rng := benchTable(b, 20)
	subs := make([]*core.Subscription, 256)
	for i := range subs {
		preds := make([]core.Range, 4)
		for d := range preds {
			lo := rng.Float64() * 750
			preds[d] = core.Range{Low: lo, High: lo + 250}
		}
		subs[i] = core.NewSubscription(1, preds)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tab.Assignments(subs[i%len(subs)])
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	tab, _ := benchTable(b, 20)
	data := tab.Encode()
	b.ReportMetric(float64(len(data)), "table-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(tab.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
