// Package partition implements mPartition, BlueDove's multi-dimensional
// subscription-space partitioning (paper Section III-A).
//
// For each of the k searchable dimensions, the dimension's value set V^i is
// split into contiguous, non-overlapping segments so every matcher owns at
// least one segment per dimension. A subscription is assigned k times, once
// along each dimension, to every matcher whose segments overlap the
// subscription's predicate range on that dimension. A message therefore has
// (at least) k candidate matchers — the owner of the segment its value falls
// into, per dimension — and any single candidate can find all matching
// subscriptions alone.
//
// The Table also implements the elasticity operations of Section III-C plus
// the hot-segment split extension: a joining matcher takes half of a loaded
// matcher's segment on each dimension, a leaving matcher's segments are
// merged into adjacent matchers', and Split cuts one hot segment at a
// load-weighted point and re-homes the upper half onto another matcher that
// is already in the table — so a matcher may own several disjoint
// sub-segment ranges on one dimension, and dimensions may have different
// segment counts.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"bluedove/internal/core"
)

// Candidate names one candidate matcher for a message: the owner of the
// segment the message's value falls into on dimension Dim. The dispatcher
// marks Dim in the forwarded message so the matcher searches only its
// dimension-Dim subscription set.
type Candidate struct {
	Node core.NodeID
	Dim  int
}

// Assignment names one placement of a subscription: node Node must store the
// subscription in its dimension-Dim set.
type Assignment struct {
	Node core.NodeID
	Dim  int
}

// DimPartition is the segmentation of a single dimension: n segments where
// segment j spans [Boundaries[j], Boundaries[j+1]) and is owned by Owners[j].
type DimPartition struct {
	// Boundaries has length n+1, strictly ascending, spanning the full
	// dimension: Boundaries[0] == Dim.Min and Boundaries[n] == Dim.Max.
	Boundaries []float64
	// Owners has length n; Owners[j] owns segment j. Each matcher appears at
	// least once; after a Split a matcher may own several segments.
	Owners []core.NodeID
}

// clone deep-copies the dimension partition.
func (dp DimPartition) clone() DimPartition {
	b := make([]float64, len(dp.Boundaries))
	copy(b, dp.Boundaries)
	o := make([]core.NodeID, len(dp.Owners))
	copy(o, dp.Owners)
	return DimPartition{Boundaries: b, Owners: o}
}

// segmentOf returns the index of the segment containing v, clamping values
// outside the dimension to the first/last segment.
func (dp DimPartition) segmentOf(v float64) int {
	// First boundary strictly greater than v, minus one.
	j := sort.SearchFloat64s(dp.Boundaries, v)
	if j < len(dp.Boundaries) && dp.Boundaries[j] == v {
		// v sits exactly on boundary j: it belongs to segment j (half-open).
		if j >= len(dp.Owners) {
			return len(dp.Owners) - 1
		}
		return j
	}
	j--
	if j < 0 {
		return 0
	}
	if j >= len(dp.Owners) {
		return len(dp.Owners) - 1
	}
	return j
}

// segRange returns segment j's interval.
func (dp DimPartition) segRange(j int) core.Range {
	return core.Range{Low: dp.Boundaries[j], High: dp.Boundaries[j+1]}
}

// ownerSegment returns the first segment index owned by node, or -1.
func (dp DimPartition) ownerSegment(node core.NodeID) int {
	for j, o := range dp.Owners {
		if o == node {
			return j
		}
	}
	return -1
}

// ownerSegments returns every segment index owned by node.
func (dp DimPartition) ownerSegments(node core.NodeID) []int {
	var out []int
	for j, o := range dp.Owners {
		if o == node {
			out = append(out, j)
		}
	}
	return out
}

// widestSegment returns node's widest segment index, or -1 — the segment a
// join split or plain handover targets when a matcher owns several.
func (dp DimPartition) widestSegment(node core.NodeID) int {
	best, bestW := -1, 0.0
	for j, o := range dp.Owners {
		if o != node {
			continue
		}
		if w := dp.Boundaries[j+1] - dp.Boundaries[j]; best < 0 || w > bestW {
			best, bestW = j, w
		}
	}
	return best
}

// Table is the global segment-assignment view that every dispatcher
// maintains (pulled from matchers via gossip). It is an immutable value:
// mutating operations return a new *Table with Version+1. Safe to share
// across goroutines once published.
type Table struct {
	version uint64
	space   *core.Space
	dims    []DimPartition
}

// ErrUnknownNode is returned by operations that name a matcher not present
// in the table.
var ErrUnknownNode = errors.New("partition: matcher not in table")

// NewUniform builds a table over space where each dimension is split into
// len(matchers) equal-width segments. Segment ownership is rotated by one
// position per dimension so a matcher's segments sit at different positions
// of different dimensions — this decorrelates hot spots across dimensions,
// the situation the paper's Figure 3 illustrates (matcher A hot on Y, cold
// on X). At least one matcher is required, and matcher IDs must be unique.
func NewUniform(space *core.Space, matchers []core.NodeID) (*Table, error) {
	n := len(matchers)
	if n == 0 {
		return nil, errors.New("partition: need at least one matcher")
	}
	seen := make(map[core.NodeID]bool, n)
	for _, m := range matchers {
		if seen[m] {
			return nil, fmt.Errorf("partition: duplicate matcher %v", m)
		}
		seen[m] = true
	}
	t := &Table{version: 1, space: space, dims: make([]DimPartition, space.K())}
	for i := 0; i < space.K(); i++ {
		d := space.Dim(i)
		bounds := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			bounds[j] = d.Min + d.Extent()*float64(j)/float64(n)
		}
		bounds[n] = d.Max // exact, avoids float drift
		owners := make([]core.NodeID, n)
		for j := 0; j < n; j++ {
			owners[j] = matchers[(j+i)%n]
		}
		t.dims[i] = DimPartition{Boundaries: bounds, Owners: owners}
	}
	return t, nil
}

// Version returns the table's monotonically increasing version.
func (t *Table) Version() uint64 { return t.version }

// Space returns the attribute space the table partitions.
func (t *Table) Space() *core.Space { return t.space }

// K returns the number of searchable dimensions.
func (t *Table) K() int { return len(t.dims) }

// N returns the number of distinct matchers in the table. Before any Split
// this equals the per-dimension segment count; after splits dimensions may
// carry more segments than matchers (see Segments).
func (t *Table) N() int {
	seen := make(map[core.NodeID]bool, len(t.dims[0].Owners))
	for _, o := range t.dims[0].Owners {
		seen[o] = true
	}
	return len(seen)
}

// Segments returns the segment count of dimension dim.
func (t *Table) Segments(dim int) int { return len(t.dims[dim].Owners) }

// Dim returns the partition of dimension i (shared storage; treat as
// read-only).
func (t *Table) Dim(i int) DimPartition { return t.dims[i] }

// Matchers returns the set of distinct matcher IDs in the table, sorted.
func (t *Table) Matchers() []core.NodeID {
	seen := make(map[core.NodeID]bool, len(t.dims[0].Owners))
	out := make([]core.NodeID, 0, len(t.dims[0].Owners))
	for _, o := range t.dims[0].Owners {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasMatcher reports whether node owns segments in the table.
func (t *Table) HasMatcher(node core.NodeID) bool {
	return t.dims[0].ownerSegment(node) >= 0
}

// SegmentOf returns the first segment range owned by node on dimension dim.
// Before any Split a matcher owns exactly one segment per dimension, so this
// is the matcher's whole holding; code that must see every sub-segment range
// after splits uses SegmentsOf.
func (t *Table) SegmentOf(node core.NodeID, dim int) (core.Range, error) {
	j := t.dims[dim].ownerSegment(node)
	if j < 0 {
		return core.Range{}, ErrUnknownNode
	}
	return t.dims[dim].segRange(j), nil
}

// SegmentsOf returns every segment range owned by node on dimension dim, in
// ascending order, or ErrUnknownNode.
func (t *Table) SegmentsOf(node core.NodeID, dim int) ([]core.Range, error) {
	js := t.dims[dim].ownerSegments(node)
	if len(js) == 0 {
		return nil, ErrUnknownNode
	}
	out := make([]core.Range, len(js))
	for i, j := range js {
		out[i] = t.dims[dim].segRange(j)
	}
	return out, nil
}

// clone returns a deep copy with the same version (callers bump it).
func (t *Table) clone() *Table {
	c := &Table{version: t.version, space: t.space, dims: make([]DimPartition, len(t.dims))}
	for i, dp := range t.dims {
		c.dims[i] = dp.clone()
	}
	return c
}

// validate checks structural invariants; used by tests and decoding. Owners
// may repeat within a dimension (sub-segment ranges after a Split) and
// dimensions may have different segment counts, but every dimension must
// span the space with strictly ascending boundaries and carry exactly the
// same matcher set, each matcher owning at least one segment per dimension.
func (t *Table) validate() error {
	if t.space == nil || len(t.dims) != t.space.K() {
		return errors.New("partition: dimension count mismatch")
	}
	var set0 map[core.NodeID]bool
	for i, dp := range t.dims {
		n := len(dp.Owners)
		if n == 0 {
			return fmt.Errorf("partition: dim %d has no segments", i)
		}
		if len(dp.Boundaries) != n+1 {
			return fmt.Errorf("partition: dim %d has %d boundaries, want %d", i, len(dp.Boundaries), n+1)
		}
		d := t.space.Dim(i)
		if dp.Boundaries[0] != d.Min || dp.Boundaries[n] != d.Max {
			return fmt.Errorf("partition: dim %d boundaries do not span [%g,%g)", i, d.Min, d.Max)
		}
		seen := make(map[core.NodeID]bool, n)
		for j := 0; j < n; j++ {
			if dp.Boundaries[j] >= dp.Boundaries[j+1] {
				return fmt.Errorf("partition: dim %d segment %d empty or inverted", i, j)
			}
			seen[dp.Owners[j]] = true
		}
		if i == 0 {
			set0 = seen
			continue
		}
		if len(seen) != len(set0) {
			return fmt.Errorf("partition: dim %d has %d matchers, dim 0 has %d", i, len(seen), len(set0))
		}
		for id := range seen {
			if !set0[id] {
				return fmt.Errorf("partition: matcher %v on dim %d missing from dim 0", id, i)
			}
		}
	}
	return nil
}

// String renders a compact description.
func (t *Table) String() string {
	segs := 0
	for _, dp := range t.dims {
		segs += len(dp.Owners)
	}
	return fmt.Sprintf("table{v%d, k=%d, n=%d, segs=%d}", t.version, t.K(), t.N(), segs)
}
