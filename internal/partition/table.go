// Package partition implements mPartition, BlueDove's multi-dimensional
// subscription-space partitioning (paper Section III-A).
//
// For each of the k searchable dimensions, the dimension's value set V^i is
// split into N contiguous, non-overlapping segments — one per matcher — so
// every matcher owns exactly one segment per dimension. A subscription is
// assigned k times, once along each dimension, to every matcher whose segment
// overlaps the subscription's predicate range on that dimension. A message
// therefore has (at least) k candidate matchers — the owner of the segment
// its value falls into, per dimension — and any single candidate can find
// all matching subscriptions alone.
//
// The Table also implements the elasticity operations of Section III-C:
// a joining matcher takes half of a loaded matcher's segment on each
// dimension, and a leaving matcher's segments are merged into an adjacent
// matcher's.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"bluedove/internal/core"
)

// Candidate names one candidate matcher for a message: the owner of the
// segment the message's value falls into on dimension Dim. The dispatcher
// marks Dim in the forwarded message so the matcher searches only its
// dimension-Dim subscription set.
type Candidate struct {
	Node core.NodeID
	Dim  int
}

// Assignment names one placement of a subscription: node Node must store the
// subscription in its dimension-Dim set.
type Assignment struct {
	Node core.NodeID
	Dim  int
}

// DimPartition is the segmentation of a single dimension: N segments where
// segment j spans [Boundaries[j], Boundaries[j+1]) and is owned by Owners[j].
type DimPartition struct {
	// Boundaries has length N+1, strictly ascending, spanning the full
	// dimension: Boundaries[0] == Dim.Min and Boundaries[N] == Dim.Max.
	Boundaries []float64
	// Owners has length N; Owners[j] owns segment j. Each matcher appears
	// exactly once.
	Owners []core.NodeID
}

// clone deep-copies the dimension partition.
func (dp DimPartition) clone() DimPartition {
	b := make([]float64, len(dp.Boundaries))
	copy(b, dp.Boundaries)
	o := make([]core.NodeID, len(dp.Owners))
	copy(o, dp.Owners)
	return DimPartition{Boundaries: b, Owners: o}
}

// segmentOf returns the index of the segment containing v, clamping values
// outside the dimension to the first/last segment.
func (dp DimPartition) segmentOf(v float64) int {
	// First boundary strictly greater than v, minus one.
	j := sort.SearchFloat64s(dp.Boundaries, v)
	if j < len(dp.Boundaries) && dp.Boundaries[j] == v {
		// v sits exactly on boundary j: it belongs to segment j (half-open).
		if j >= len(dp.Owners) {
			return len(dp.Owners) - 1
		}
		return j
	}
	j--
	if j < 0 {
		return 0
	}
	if j >= len(dp.Owners) {
		return len(dp.Owners) - 1
	}
	return j
}

// segRange returns segment j's interval.
func (dp DimPartition) segRange(j int) core.Range {
	return core.Range{Low: dp.Boundaries[j], High: dp.Boundaries[j+1]}
}

// ownerSegment returns the segment index owned by node, or -1.
func (dp DimPartition) ownerSegment(node core.NodeID) int {
	for j, o := range dp.Owners {
		if o == node {
			return j
		}
	}
	return -1
}

// Table is the global segment-assignment view that every dispatcher
// maintains (pulled from matchers via gossip). It is an immutable value:
// mutating operations return a new *Table with Version+1. Safe to share
// across goroutines once published.
type Table struct {
	version uint64
	space   *core.Space
	dims    []DimPartition
}

// ErrUnknownNode is returned by operations that name a matcher not present
// in the table.
var ErrUnknownNode = errors.New("partition: matcher not in table")

// NewUniform builds a table over space where each dimension is split into
// len(matchers) equal-width segments. Segment ownership is rotated by one
// position per dimension so a matcher's segments sit at different positions
// of different dimensions — this decorrelates hot spots across dimensions,
// the situation the paper's Figure 3 illustrates (matcher A hot on Y, cold
// on X). At least one matcher is required, and matcher IDs must be unique.
func NewUniform(space *core.Space, matchers []core.NodeID) (*Table, error) {
	n := len(matchers)
	if n == 0 {
		return nil, errors.New("partition: need at least one matcher")
	}
	seen := make(map[core.NodeID]bool, n)
	for _, m := range matchers {
		if seen[m] {
			return nil, fmt.Errorf("partition: duplicate matcher %v", m)
		}
		seen[m] = true
	}
	t := &Table{version: 1, space: space, dims: make([]DimPartition, space.K())}
	for i := 0; i < space.K(); i++ {
		d := space.Dim(i)
		bounds := make([]float64, n+1)
		for j := 0; j <= n; j++ {
			bounds[j] = d.Min + d.Extent()*float64(j)/float64(n)
		}
		bounds[n] = d.Max // exact, avoids float drift
		owners := make([]core.NodeID, n)
		for j := 0; j < n; j++ {
			owners[j] = matchers[(j+i)%n]
		}
		t.dims[i] = DimPartition{Boundaries: bounds, Owners: owners}
	}
	return t, nil
}

// Version returns the table's monotonically increasing version.
func (t *Table) Version() uint64 { return t.version }

// Space returns the attribute space the table partitions.
func (t *Table) Space() *core.Space { return t.space }

// K returns the number of searchable dimensions.
func (t *Table) K() int { return len(t.dims) }

// N returns the number of matchers (segments per dimension).
func (t *Table) N() int { return len(t.dims[0].Owners) }

// Dim returns the partition of dimension i (shared storage; treat as
// read-only).
func (t *Table) Dim(i int) DimPartition { return t.dims[i] }

// Matchers returns the set of matcher IDs in the table, sorted.
func (t *Table) Matchers() []core.NodeID {
	out := make([]core.NodeID, len(t.dims[0].Owners))
	copy(out, t.dims[0].Owners)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasMatcher reports whether node owns segments in the table.
func (t *Table) HasMatcher(node core.NodeID) bool {
	return t.dims[0].ownerSegment(node) >= 0
}

// SegmentOf returns the segment range owned by node on dimension dim.
func (t *Table) SegmentOf(node core.NodeID, dim int) (core.Range, error) {
	j := t.dims[dim].ownerSegment(node)
	if j < 0 {
		return core.Range{}, ErrUnknownNode
	}
	return t.dims[dim].segRange(j), nil
}

// clone returns a deep copy with the same version (callers bump it).
func (t *Table) clone() *Table {
	c := &Table{version: t.version, space: t.space, dims: make([]DimPartition, len(t.dims))}
	for i, dp := range t.dims {
		c.dims[i] = dp.clone()
	}
	return c
}

// validate checks structural invariants; used by tests and decoding.
func (t *Table) validate() error {
	if t.space == nil || len(t.dims) != t.space.K() {
		return errors.New("partition: dimension count mismatch")
	}
	n := len(t.dims[0].Owners)
	for i, dp := range t.dims {
		if len(dp.Owners) != n {
			return fmt.Errorf("partition: dim %d has %d owners, dim 0 has %d", i, len(dp.Owners), n)
		}
		if len(dp.Boundaries) != n+1 {
			return fmt.Errorf("partition: dim %d has %d boundaries, want %d", i, len(dp.Boundaries), n+1)
		}
		d := t.space.Dim(i)
		if dp.Boundaries[0] != d.Min || dp.Boundaries[n] != d.Max {
			return fmt.Errorf("partition: dim %d boundaries do not span [%g,%g)", i, d.Min, d.Max)
		}
		seen := make(map[core.NodeID]bool, n)
		for j := 0; j < n; j++ {
			if dp.Boundaries[j] >= dp.Boundaries[j+1] {
				return fmt.Errorf("partition: dim %d segment %d empty or inverted", i, j)
			}
			if seen[dp.Owners[j]] {
				return fmt.Errorf("partition: dim %d owner %v appears twice", i, dp.Owners[j])
			}
			seen[dp.Owners[j]] = true
		}
	}
	return nil
}

// String renders a compact description.
func (t *Table) String() string {
	return fmt.Sprintf("table{v%d, k=%d, n=%d}", t.version, t.K(), t.N())
}
