package partition

import (
	"errors"
	"fmt"

	"bluedove/internal/core"
)

// Handover describes one subscription transfer implied by a membership
// change: subscriptions stored in From's dimension-Dim set whose predicate
// overlaps Range must move to To's dimension-Dim set.
type Handover struct {
	Dim  int
	From core.NodeID
	To   core.NodeID
	// Range is the value range changing ownership on dimension Dim.
	Range core.Range
}

// String renders a compact description.
func (h Handover) String() string {
	return fmt.Sprintf("handover{dim%d %v->%v %v}", h.Dim, h.From, h.To, h.Range)
}

// Join produces a new table in which matcher newNode has joined by taking
// the upper half of victims[i]'s segment on each dimension i (paper Section
// III-C: "the dispatcher chooses a heavily loaded matcher, and for each
// segment on that matcher splits half of the segment to the new matcher";
// the elasticity experiment picks the most loaded matcher per dimension).
// It returns the table, the implied subscription handovers, and an error if
// newNode is already present or a victim is unknown.
func (t *Table) Join(newNode core.NodeID, victims []core.NodeID) (*Table, []Handover, error) {
	if t.HasMatcher(newNode) {
		return nil, nil, fmt.Errorf("partition: %v already in table", newNode)
	}
	if len(victims) != t.K() {
		return nil, nil, fmt.Errorf("partition: need %d victims, got %d", t.K(), len(victims))
	}
	c := t.clone()
	handovers := make([]Handover, 0, t.K())
	for i := range c.dims {
		dp := &c.dims[i]
		// A victim that owns several sub-segment ranges (post-split) gives up
		// half of its widest one.
		j := dp.widestSegment(victims[i])
		if j < 0 {
			return nil, nil, fmt.Errorf("partition: victim %v on dim %d: %w", victims[i], i, ErrUnknownNode)
		}
		lo, hi := dp.Boundaries[j], dp.Boundaries[j+1]
		mid := lo + (hi-lo)/2
		if !(lo < mid && mid < hi) {
			return nil, nil, fmt.Errorf("partition: dim %d segment %d too narrow to split", i, j)
		}
		// Victim keeps [lo, mid); new node takes [mid, hi).
		dp.Boundaries = append(dp.Boundaries, 0)
		copy(dp.Boundaries[j+2:], dp.Boundaries[j+1:])
		dp.Boundaries[j+1] = mid
		dp.Owners = append(dp.Owners, 0)
		copy(dp.Owners[j+2:], dp.Owners[j+1:])
		dp.Owners[j+1] = newNode
		handovers = append(handovers, Handover{
			Dim: i, From: victims[i], To: newNode,
			Range: core.Range{Low: mid, High: hi},
		})
	}
	c.version = t.version + 1
	return c, handovers, nil
}

// Leave produces a new table in which matcher node has left; on each
// dimension every segment it owns is absorbed by the adjacent (preceding,
// else following) segment's owner — the reverse of the joining process. It
// returns the table and the implied handovers (one per absorbed segment).
// Leaving the last matcher is an error.
func (t *Table) Leave(node core.NodeID) (*Table, []Handover, error) {
	if !t.HasMatcher(node) {
		return nil, nil, ErrUnknownNode
	}
	if t.N() <= 1 {
		return nil, nil, errors.New("partition: cannot remove the last matcher")
	}
	c := t.clone()
	handovers := make([]Handover, 0, t.K())
	for i := range c.dims {
		dp := &c.dims[i]
		for {
			j := dp.ownerSegment(node)
			if j < 0 {
				break
			}
			seg := dp.segRange(j)
			var to core.NodeID
			if j > 0 {
				to = dp.Owners[j-1] // left neighbor extends its upper boundary
				// remove boundary j and owner j
				dp.Boundaries = append(dp.Boundaries[:j], dp.Boundaries[j+1:]...)
				dp.Owners = append(dp.Owners[:j], dp.Owners[j+1:]...)
			} else {
				to = dp.Owners[1] // right neighbor extends its lower boundary
				dp.Boundaries = append(dp.Boundaries[:1], dp.Boundaries[2:]...)
				dp.Owners = dp.Owners[1:]
			}
			handovers = append(handovers, Handover{Dim: i, From: node, To: to, Range: seg})
		}
	}
	c.version = t.version + 1
	return c, handovers, nil
}

// Split cuts the dimension-dim segment containing cut at the cut point and
// re-homes the upper half [cut, high) onto matcher to, which must already be
// in the table — the hot-segment rebalancing operation driven by the
// elasticity controller when one segment is hot from a skewed subscription
// range. The cut must fall strictly inside a segment not already owned by
// to. Returns the new table and the implied handover.
func (t *Table) Split(dim int, cut float64, to core.NodeID) (*Table, Handover, error) {
	if dim < 0 || dim >= t.K() {
		return nil, Handover{}, fmt.Errorf("partition: split dim %d out of range", dim)
	}
	if !t.HasMatcher(to) {
		return nil, Handover{}, fmt.Errorf("partition: split target %v: %w", to, ErrUnknownNode)
	}
	c := t.clone()
	dp := &c.dims[dim]
	j := dp.segmentOf(cut)
	lo, hi := dp.Boundaries[j], dp.Boundaries[j+1]
	if !(lo < cut && cut < hi) {
		return nil, Handover{}, fmt.Errorf("partition: cut %g not strictly inside segment [%g,%g)", cut, lo, hi)
	}
	from := dp.Owners[j]
	if from == to {
		return nil, Handover{}, fmt.Errorf("partition: segment [%g,%g) already owned by %v", lo, hi, to)
	}
	dp.Boundaries = append(dp.Boundaries, 0)
	copy(dp.Boundaries[j+2:], dp.Boundaries[j+1:])
	dp.Boundaries[j+1] = cut
	dp.Owners = append(dp.Owners, 0)
	copy(dp.Owners[j+2:], dp.Owners[j+1:])
	dp.Owners[j+1] = to
	c.version = t.version + 1
	return c, Handover{Dim: dim, From: from, To: to, Range: core.Range{Low: cut, High: hi}}, nil
}
