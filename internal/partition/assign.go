package partition

import (
	"bluedove/internal/core"
)

// Assignments computes every (matcher, dimension) placement for a
// subscription: along each dimension i, every matcher whose segment overlaps
// the predicate range S^i receives a copy tagged with dimension i (paper
// Section III-A). Predicates are clipped to the dimension's value set; a
// predicate covering the whole dimension assigns the subscription to every
// matcher on that dimension.
func (t *Table) Assignments(s *core.Subscription) []Assignment {
	out := make([]Assignment, 0, t.K()+2)
	var seen map[core.NodeID]bool
	for i, dp := range t.dims {
		d := t.space.Dim(i)
		pred := s.Predicates[i].Intersect(core.Range{Low: d.Min, High: d.Max})
		if pred.Empty() {
			continue // unsatisfiable predicate; Validate rejects these upstream
		}
		lo := dp.segmentOf(pred.Low)
		seen = nil // owners may repeat after splits; one copy per (node, dim)
		for j := lo; j < len(dp.Owners); j++ {
			if !dp.segRange(j).Overlaps(pred) {
				break
			}
			o := dp.Owners[j]
			if seen[o] {
				continue
			}
			if seen == nil {
				seen = make(map[core.NodeID]bool, 2)
			}
			seen[o] = true
			out = append(out, Assignment{Node: o, Dim: i})
		}
	}
	return out
}

// DistinctNodes returns the set of distinct matcher IDs in assignments.
func DistinctNodes(assignments []Assignment) []core.NodeID {
	seen := make(map[core.NodeID]bool, len(assignments))
	out := make([]core.NodeID, 0, len(assignments))
	for _, a := range assignments {
		if !seen[a.Node] {
			seen[a.Node] = true
			out = append(out, a.Node)
		}
	}
	return out
}

// AssignmentsReplicated is Assignments plus the paper's safeguard for the
// rare case where all k copies land on the same matcher: the subscription is
// additionally replicated to the clockwise neighbor of that matcher on each
// dimension, yielding (k-1) extra distinct matchers with high probability
// (Section III-A1).
func (t *Table) AssignmentsReplicated(s *core.Subscription) []Assignment {
	base := t.Assignments(s)
	if len(DistinctNodes(base)) > 1 || t.N() == 1 {
		return base
	}
	only := base[0].Node
	for i, dp := range t.dims {
		j := dp.ownerSegment(only)
		if j < 0 {
			continue
		}
		// Clockwise neighbor: the next segment owned by a different matcher
		// (post-split tables may have adjacent segments with one owner).
		for step := 1; step < len(dp.Owners); step++ {
			next := (j + step) % len(dp.Owners)
			if dp.Owners[next] != only {
				base = append(base, Assignment{Node: dp.Owners[next], Dim: i})
				break
			}
		}
	}
	return base
}

// CandidatesFor returns the k candidate matchers for a message: on each
// dimension, the owner of the segment the message's value falls into.
// Values outside the dimension clamp to the boundary segments. The result
// always has length k; entries may name the same node more than once when
// candidates coincide.
func (t *Table) CandidatesFor(m *core.Message) []Candidate {
	out := make([]Candidate, t.K())
	for i, dp := range t.dims {
		j := dp.segmentOf(m.Attrs[i])
		out[i] = Candidate{Node: dp.Owners[j], Dim: i}
	}
	return out
}

// CandidateOn returns the candidate matcher for m along one dimension.
func (t *Table) CandidateOn(m *core.Message, dim int) Candidate {
	dp := t.dims[dim]
	return Candidate{Node: dp.Owners[dp.segmentOf(m.Attrs[dim])], Dim: dim}
}
