package partition

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

// TestSplit pins the hot-segment split: the upper half of the cut segment
// changes owner, the target may already own other segments, and the table
// stays valid with per-dimension segment counts diverging.
func TestSplit(t *testing.T) {
	space := core.UniformSpace(2, 900)
	tab := mustUniform(t, space, 3)
	// Dim 0 owners are [1 2 3] over [0,300) [300,600) [600,900).
	newTab, h, err := tab.Split(0, 450, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := newTab.validate(); err != nil {
		t.Fatal(err)
	}
	if h.Dim != 0 || h.From != 2 || h.To != 3 {
		t.Fatalf("handover = %v", h)
	}
	if h.Range != (core.Range{Low: 450, High: 600}) {
		t.Fatalf("handover range = %v", h.Range)
	}
	if newTab.Version() != tab.Version()+1 {
		t.Errorf("version = %d", newTab.Version())
	}
	// Matcher count unchanged, dim-0 segment count grew.
	if newTab.N() != 3 || newTab.Segments(0) != 4 || newTab.Segments(1) != 3 {
		t.Fatalf("N=%d segs=[%d %d]", newTab.N(), newTab.Segments(0), newTab.Segments(1))
	}
	// Matcher 3 now owns two dim-0 ranges: [450,600) and [600,900).
	segs, err := newTab.SegmentsOf(3, 0)
	if err != nil || len(segs) != 2 {
		t.Fatalf("SegmentsOf(3,0) = %v, %v", segs, err)
	}
	if segs[0] != (core.Range{Low: 450, High: 600}) || segs[1] != (core.Range{Low: 600, High: 900}) {
		t.Fatalf("segments = %v", segs)
	}
	// Messages in the moved range route to the new owner.
	if c := newTab.CandidateOn(core.NewMessage([]float64{500, 10}, nil), 0); c.Node != 3 {
		t.Errorf("candidate for 500 = %v, want 3", c.Node)
	}
	if c := newTab.CandidateOn(core.NewMessage([]float64{440, 10}, nil), 0); c.Node != 2 {
		t.Errorf("candidate for 440 = %v, want 2", c.Node)
	}
	// Original table untouched.
	if tab.Segments(0) != 3 {
		t.Error("Split mutated the receiver")
	}
}

func TestSplitErrors(t *testing.T) {
	space := core.UniformSpace(1, 900)
	tab := mustUniform(t, space, 3)
	if _, _, err := tab.Split(0, 450, 99); err == nil {
		t.Error("split to unknown matcher accepted")
	}
	if _, _, err := tab.Split(0, 300, 3); err == nil {
		t.Error("cut on a boundary accepted")
	}
	if _, _, err := tab.Split(0, 450, 2); err == nil {
		t.Error("split to the segment's own owner accepted")
	}
	if _, _, err := tab.Split(5, 450, 3); err == nil {
		t.Error("out-of-range dim accepted")
	}
}

// TestAssignmentsDedupeAfterSplit: a predicate spanning two segments of the
// same owner must produce one copy per (node, dim), not two.
func TestAssignmentsDedupeAfterSplit(t *testing.T) {
	space := core.UniformSpace(1, 900)
	tab := mustUniform(t, space, 3)
	// Give matcher 3 a second dim-0 range adjacent to its own: split matcher
	// 2's segment so owners run [1 2 3 3].
	tab2, _, err := tab.Split(0, 450, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSubscription(1, []core.Range{{Low: 460, High: 880}})
	s.ID = 1
	as := tab2.Assignments(s)
	seen := make(map[Assignment]int)
	for _, a := range as {
		seen[a]++
		if seen[a] > 1 {
			t.Fatalf("duplicate assignment %v in %v", a, as)
		}
	}
	if len(as) != 1 || as[0].Node != 3 {
		t.Fatalf("assignments = %v, want one copy on matcher 3", as)
	}
}

// TestLeaveAfterSplit: a matcher holding several sub-segment ranges leaves;
// every range must be absorbed and the table must stay valid.
func TestLeaveAfterSplit(t *testing.T) {
	space := core.UniformSpace(2, 900)
	tab := mustUniform(t, space, 3)
	tab2, _, err := tab.Split(0, 450, 3) // matcher 3: [450,600) and [600,900) on dim 0
	if err != nil {
		t.Fatal(err)
	}
	newTab, handovers, err := tab2.Leave(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := newTab.validate(); err != nil {
		t.Fatal(err)
	}
	if newTab.N() != 2 || newTab.HasMatcher(3) {
		t.Fatalf("N=%d HasMatcher(3)=%v", newTab.N(), newTab.HasMatcher(3))
	}
	// Dim 0 had two ranges to hand over, dim 1 one.
	byDim := map[int]int{}
	for _, h := range handovers {
		if h.From != 3 {
			t.Errorf("handover from %v", h.From)
		}
		byDim[h.Dim]++
	}
	if byDim[0] != 2 || byDim[1] != 1 {
		t.Fatalf("handovers per dim = %v", byDim)
	}
}

// TestEncodeDecodeSplitTable: the wire format carries per-dimension segment
// counts, so a table with diverging counts must roundtrip exactly.
func TestEncodeDecodeSplitTable(t *testing.T) {
	space := core.UniformSpace(3, 1000)
	tab := mustUniform(t, space, 4)
	tab2, _, err := tab.Split(1, 333, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab3, _, err := tab2.Split(1, 777, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(tab3.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != tab3.Version() || got.N() != tab3.N() {
		t.Fatalf("roundtrip: %v vs %v", got, tab3)
	}
	for i := 0; i < got.K(); i++ {
		if got.Segments(i) != tab3.Segments(i) {
			t.Fatalf("dim %d segments = %d, want %d", i, got.Segments(i), tab3.Segments(i))
		}
		a, b := got.Dim(i), tab3.Dim(i)
		for j := range a.Boundaries {
			if a.Boundaries[j] != b.Boundaries[j] {
				t.Fatalf("dim %d boundary %d mismatch", i, j)
			}
		}
		for j := range a.Owners {
			if a.Owners[j] != b.Owners[j] {
				t.Fatalf("dim %d owner %d mismatch", i, j)
			}
		}
	}
}

// TestElasticChurnWithSplits extends the churn property test with splits:
// random join/leave/split sequences must preserve validity and candidate
// completeness.
func TestElasticChurnWithSplits(t *testing.T) {
	space := core.UniformSpace(3, 1000)
	tab := mustUniform(t, space, 4)
	rng := rand.New(rand.NewSource(7))
	next := core.NodeID(100)
	for step := 0; step < 300; step++ {
		switch {
		case rng.Intn(3) == 0 && tab.N() < 30:
			victims := make([]core.NodeID, tab.K())
			ms := tab.Matchers()
			for i := range victims {
				victims[i] = ms[rng.Intn(len(ms))]
			}
			if nt, _, err := tab.Join(next, victims); err == nil {
				next++
				tab = nt
			}
		case rng.Intn(3) == 1 && tab.N() > 2:
			ms := tab.Matchers()
			if nt, _, err := tab.Leave(ms[rng.Intn(len(ms))]); err == nil {
				tab = nt
			}
		default:
			dim := rng.Intn(tab.K())
			d := space.Dim(dim)
			cut := d.Min + rng.Float64()*d.Extent()
			ms := tab.Matchers()
			to := ms[rng.Intn(len(ms))]
			if nt, _, err := tab.Split(dim, cut, to); err == nil {
				tab = nt
			}
		}
		if err := tab.validate(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if _, err := Decode(tab.Encode()); err != nil {
			t.Fatalf("step %d roundtrip: %v", step, err)
		}
		s := randSub(rng, space, 300)
		m := randMsgIn(rng, s, space)
		has := make(map[Assignment]bool)
		for _, a := range tab.Assignments(s) {
			has[a] = true
		}
		for _, c := range tab.CandidatesFor(m) {
			if !has[Assignment{Node: c.Node, Dim: c.Dim}] {
				t.Fatalf("step %d: completeness violated", step)
			}
		}
	}
}
