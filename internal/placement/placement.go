// Package placement defines how a pub/sub system maps subscriptions onto
// matchers and messages onto candidate matchers, given a partition table.
// It factors out the difference between the three systems compared in the
// paper's evaluation (Section IV-B):
//
//   - BlueDove: mPartition — subscriptions assigned along every searchable
//     dimension, k candidate matchers per message.
//   - P2P: a DHT-style single-dimension partitioning (as in PastryStrings /
//     Sub-2-Sub): subscriptions assigned along one fixed dimension only, so
//     each message has exactly one matcher that can match it.
//   - Full replication: every matcher stores every subscription; any matcher
//     can match any message (the enterprise-cluster approach).
//
// All three share the same one-hop overlay, matcher and dispatcher code;
// only Assign/Candidates differ — exactly the framing in the paper.
package placement

import (
	"fmt"
	"sort"

	"bluedove/internal/core"
	"bluedove/internal/partition"
)

// Strategy maps subscriptions and messages onto matchers.
type Strategy interface {
	// Name identifies the strategy ("bluedove", "p2p", "fullrep").
	Name() string
	// Assign returns every (matcher, dimension) placement for s under table t.
	Assign(t *partition.Table, s *core.Subscription) []partition.Assignment
	// Candidates returns the candidate matchers able to fully match m under
	// table t. The dispatcher's forwarding policy picks among them.
	Candidates(t *partition.Table, m *core.Message) []partition.Candidate
}

// BlueDove is the paper's system: mPartition assignment with the
// coincident-candidate neighbor replication safeguard, and k candidates per
// message.
type BlueDove struct {
	// DisableReplication turns off the Section III-A1 neighbor replication
	// for the rare all-candidates-coincide case (ablation).
	DisableReplication bool
	// Dims restricts mPartition to the first Dims searchable dimensions
	// (0 or >K means all). Used by the Figure 11a dimensionality sweep.
	Dims int
	// DimSet, when non-empty, restricts mPartition to exactly these
	// dimensions (overrides Dims) — the paper's Section VI future-work item
	// of partitioning only on the commonly used attributes. Use SelectDims
	// to derive a good set from a subscription sample.
	DimSet []int
}

// Name returns "bluedove".
func (BlueDove) Name() string { return "bluedove" }

// searchable reports whether dimension d participates in partitioning.
func (b BlueDove) searchable(t *partition.Table, d int) bool {
	if len(b.DimSet) > 0 {
		for _, sd := range b.DimSet {
			if sd == d {
				return true
			}
		}
		return false
	}
	if b.Dims <= 0 || b.Dims > t.K() {
		return true
	}
	return d < b.Dims
}

// restricted reports whether any dimension is excluded.
func (b BlueDove) restricted(t *partition.Table) bool {
	if len(b.DimSet) > 0 {
		return len(b.DimSet) < t.K()
	}
	return b.Dims > 0 && b.Dims < t.K()
}

// Assign implements Strategy.
func (b BlueDove) Assign(t *partition.Table, s *core.Subscription) []partition.Assignment {
	var asg []partition.Assignment
	if b.DisableReplication {
		asg = t.Assignments(s)
	} else {
		asg = t.AssignmentsReplicated(s)
	}
	if b.restricted(t) {
		kept := asg[:0]
		for _, a := range asg {
			if b.searchable(t, a.Dim) {
				kept = append(kept, a)
			}
		}
		asg = kept
	}
	return asg
}

// Candidates implements Strategy.
func (b BlueDove) Candidates(t *partition.Table, m *core.Message) []partition.Candidate {
	cands := t.CandidatesFor(m)
	if b.restricted(t) {
		kept := cands[:0]
		for _, c := range cands {
			if b.searchable(t, c.Dim) {
				kept = append(kept, c)
			}
		}
		cands = kept
	}
	return cands
}

// SelectDims picks the k most selective dimensions from a subscription
// sample — the dimensions where predicates are narrowest relative to the
// dimension extent. Attributes applications rarely constrain carry
// full-range predicates; partitioning on them stores every subscription on
// every matcher along that dimension for no discrimination (the overhead
// the paper's Section VI flags). Returns dimension indexes sorted ascending.
func SelectDims(space *core.Space, sample []*core.Subscription, k int) []int {
	kAll := space.K()
	if k <= 0 || k >= kAll {
		out := make([]int, kAll)
		for i := range out {
			out[i] = i
		}
		return out
	}
	type dimScore struct {
		dim   int
		score float64 // mean predicate width / extent; lower = more selective
	}
	scores := make([]dimScore, kAll)
	for d := 0; d < kAll; d++ {
		scores[d].dim = d
		ext := space.Dim(d).Extent()
		if len(sample) == 0 {
			scores[d].score = 1
			continue
		}
		sum := 0.0
		for _, s := range sample {
			dimRange := core.Range{Low: space.Dim(d).Min, High: space.Dim(d).Max}
			w := s.Predicates[d].Intersect(dimRange).Length() / ext
			if w > 1 {
				w = 1
			}
			sum += w
		}
		scores[d].score = sum / float64(len(sample))
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].score != scores[j].score {
			return scores[i].score < scores[j].score
		}
		return scores[i].dim < scores[j].dim
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = scores[i].dim
	}
	sort.Ints(out)
	return out
}

// P2P is the single-dimension DHT baseline: subscriptions are partitioned by
// their predicate on dimension Dim only; each message has exactly one
// candidate matcher.
type P2P struct {
	// Dim is the partitioned dimension (0 in the paper's comparison).
	Dim int
}

// Name returns "p2p".
func (P2P) Name() string { return "p2p" }

// Assign implements Strategy: only dimension-Dim placements are kept.
func (p P2P) Assign(t *partition.Table, s *core.Subscription) []partition.Assignment {
	all := t.Assignments(s)
	out := all[:0:0]
	for _, a := range all {
		if a.Dim == p.Dim {
			out = append(out, a)
		}
	}
	return out
}

// Candidates implements Strategy: the single owner of the message's segment
// on dimension Dim.
func (p P2P) Candidates(t *partition.Table, m *core.Message) []partition.Candidate {
	return []partition.Candidate{t.CandidateOn(m, p.Dim)}
}

// FullRep replicates every subscription to every matcher (stored in each
// matcher's dimension-0 set); every matcher is a candidate for every
// message. Dispatchers pair it with the Random forwarding policy, as in the
// paper.
type FullRep struct{}

// Name returns "fullrep".
func (FullRep) Name() string { return "fullrep" }

// Assign implements Strategy: one placement per matcher, all on dimension 0.
func (FullRep) Assign(t *partition.Table, s *core.Subscription) []partition.Assignment {
	ms := t.Matchers()
	out := make([]partition.Assignment, len(ms))
	for i, n := range ms {
		out[i] = partition.Assignment{Node: n, Dim: 0}
	}
	return out
}

// Candidates implements Strategy: every matcher, on dimension 0.
func (FullRep) Candidates(t *partition.Table, m *core.Message) []partition.Candidate {
	ms := t.Matchers()
	out := make([]partition.Candidate, len(ms))
	for i, n := range ms {
		out[i] = partition.Candidate{Node: n, Dim: 0}
	}
	return out
}

// ByName returns the strategy with the given name ("bluedove", "p2p",
// "fullrep"), or nil for unknown names.
func ByName(name string) Strategy {
	switch name {
	case "bluedove":
		return BlueDove{}
	case "p2p":
		return P2P{}
	case "fullrep":
		return FullRep{}
	default:
		return nil
	}
}

// MustByName is ByName but panics on unknown names.
func MustByName(name string) Strategy {
	s := ByName(name)
	if s == nil {
		panic(fmt.Sprintf("placement: unknown strategy %q", name))
	}
	return s
}
