package placement

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
	"bluedove/internal/partition"
)

func table(t *testing.T, k, n int) *partition.Table {
	t.Helper()
	ids := make([]core.NodeID, n)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	tab, err := partition.NewUniform(core.UniformSpace(k, 1000), ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNames(t *testing.T) {
	if (BlueDove{}).Name() != "bluedove" || (P2P{}).Name() != "p2p" || (FullRep{}).Name() != "fullrep" {
		t.Error("names")
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"bluedove", "p2p", "fullrep"} {
		if s := ByName(n); s == nil || s.Name() != n {
			t.Errorf("ByName(%q) = %v", n, s)
		}
	}
	if ByName("x") != nil {
		t.Error("unknown name")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic")
		}
	}()
	MustByName("x")
}

func TestBlueDoveCandidatesPerDim(t *testing.T) {
	tab := table(t, 4, 10)
	m := core.NewMessage([]float64{10, 500, 900, 250}, nil)
	cands := BlueDove{}.Candidates(tab, m)
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4", len(cands))
	}
	dims := map[int]bool{}
	for _, c := range cands {
		dims[c.Dim] = true
	}
	if len(dims) != 4 {
		t.Errorf("candidates missing dimensions: %v", cands)
	}
}

func TestBlueDoveDimsRestriction(t *testing.T) {
	tab := table(t, 4, 10)
	m := core.NewMessage([]float64{10, 500, 900, 250}, nil)
	for _, k := range []int{1, 2, 3} {
		b := BlueDove{Dims: k}
		cands := b.Candidates(tab, m)
		if len(cands) != k {
			t.Fatalf("Dims=%d: candidates = %d", k, len(cands))
		}
		s := core.NewSubscription(1, []core.Range{{Low: 0, High: 50}, {Low: 0, High: 50}, {Low: 0, High: 50}, {Low: 0, High: 50}})
		for _, a := range b.Assign(tab, s) {
			if a.Dim >= k {
				t.Fatalf("Dims=%d: assignment on dim %d", k, a.Dim)
			}
		}
	}
	// Dims=0 and Dims>K mean all dimensions.
	if got := (BlueDove{Dims: 0}).Candidates(tab, m); len(got) != 4 {
		t.Error("Dims=0 should use all dims")
	}
	if got := (BlueDove{Dims: 99}).Candidates(tab, m); len(got) != 4 {
		t.Error("Dims>K should use all dims")
	}
}

func TestP2PSingleCandidate(t *testing.T) {
	tab := table(t, 3, 5)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		attrs := []float64{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		m := core.NewMessage(attrs, nil)
		cands := P2P{Dim: 0}.Candidates(tab, m)
		if len(cands) != 1 || cands[0].Dim != 0 {
			t.Fatalf("p2p candidates = %v", cands)
		}
	}
	s := core.NewSubscription(1, []core.Range{{Low: 100, High: 300}, {Low: 0, High: 1000}, {Low: 0, High: 1000}})
	for _, a := range (P2P{Dim: 0}).Assign(tab, s) {
		if a.Dim != 0 {
			t.Fatalf("p2p assignment on dim %d", a.Dim)
		}
	}
	// Different partition dimension.
	cands := P2P{Dim: 2}.Candidates(tab, core.NewMessage([]float64{1, 2, 3}, nil))
	if len(cands) != 1 || cands[0].Dim != 2 {
		t.Fatalf("p2p dim 2 candidates = %v", cands)
	}
}

func TestFullRepEverywhere(t *testing.T) {
	tab := table(t, 2, 6)
	s := core.NewSubscription(1, []core.Range{{Low: 0, High: 1}, {Low: 0, High: 1}})
	asg := FullRep{}.Assign(tab, s)
	if len(asg) != 6 {
		t.Fatalf("fullrep assignments = %d, want 6", len(asg))
	}
	m := core.NewMessage([]float64{500, 500}, nil)
	cands := FullRep{}.Candidates(tab, m)
	if len(cands) != 6 {
		t.Fatalf("fullrep candidates = %d, want 6", len(cands))
	}
}

// Completeness must hold for every strategy: if message m matches
// subscription s, then every candidate for m holds an assignment of s on the
// candidate's dimension.
func TestStrategyCompletenessProperty(t *testing.T) {
	tab := table(t, 3, 8)
	rng := rand.New(rand.NewSource(9))
	strategies := []Strategy{BlueDove{}, BlueDove{DisableReplication: true}, BlueDove{Dims: 2}, P2P{}, P2P{Dim: 1}, FullRep{}}
	for iter := 0; iter < 800; iter++ {
		preds := make([]core.Range, 3)
		attrs := make([]float64, 3)
		for i := range preds {
			lo := rng.Float64() * 900
			preds[i] = core.Range{Low: lo, High: lo + rng.Float64()*200 + 0.1}
			attrs[i] = preds[i].Low + rng.Float64()*(preds[i].High-preds[i].Low)*0.99
			if attrs[i] >= 1000 {
				attrs[i] = 999.9
			}
		}
		s := core.NewSubscription(1, preds)
		s.ID = core.SubscriptionID(iter + 1)
		m := core.NewMessage(attrs, nil)
		if !s.Matches(m) {
			continue
		}
		for _, st := range strategies {
			has := map[partition.Assignment]bool{}
			for _, a := range st.Assign(tab, s) {
				has[a] = true
			}
			for _, c := range st.Candidates(tab, m) {
				if !has[partition.Assignment{Node: c.Node, Dim: c.Dim}] {
					t.Fatalf("%s: candidate %v lacks subscription on dim %d", st.Name(), c.Node, c.Dim)
				}
			}
		}
	}
}

func TestDimSetRestriction(t *testing.T) {
	tab := table(t, 4, 10)
	m := core.NewMessage([]float64{10, 500, 900, 250}, nil)
	b := BlueDove{DimSet: []int{1, 3}}
	cands := b.Candidates(tab, m)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	for _, c := range cands {
		if c.Dim != 1 && c.Dim != 3 {
			t.Fatalf("candidate on excluded dim %d", c.Dim)
		}
	}
	s := core.NewSubscription(1, []core.Range{
		{Low: 0, High: 50}, {Low: 0, High: 50}, {Low: 0, High: 50}, {Low: 0, High: 50}})
	for _, a := range b.Assign(tab, s) {
		if a.Dim != 1 && a.Dim != 3 {
			t.Fatalf("assignment on excluded dim %d", a.Dim)
		}
	}
	// A full DimSet is unrestricted.
	full := BlueDove{DimSet: []int{0, 1, 2, 3}}
	if got := full.Candidates(tab, m); len(got) != 4 {
		t.Fatalf("full DimSet candidates = %d", len(got))
	}
	// Completeness still holds on the restricted dims.
	match := core.NewMessage([]float64{25, 25, 25, 25}, nil)
	has := map[partition.Assignment]bool{}
	for _, a := range b.Assign(tab, s) {
		has[a] = true
	}
	for _, c := range b.Candidates(tab, match) {
		if !has[partition.Assignment{Node: c.Node, Dim: c.Dim}] {
			t.Fatalf("completeness violated on dim %d", c.Dim)
		}
	}
}

func TestSelectDims(t *testing.T) {
	space := core.UniformSpace(4, 1000)
	// Dimensions 1 and 2 carry narrow predicates; 0 and 3 are unconstrained
	// (full-range) — the "rarely used attributes" of the paper's Section VI.
	var sample []*core.Subscription
	for i := 0; i < 50; i++ {
		lo := float64(i * 10)
		sample = append(sample, core.NewSubscription(1, []core.Range{
			{Low: 0, High: 1000},
			{Low: lo, High: lo + 100},
			{Low: lo, High: lo + 250},
			{Low: -1e6, High: 1e6},
		}))
	}
	got := SelectDims(space, sample, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SelectDims = %v, want [1 2]", got)
	}
	// k >= K returns everything.
	if got := SelectDims(space, sample, 9); len(got) != 4 {
		t.Fatalf("SelectDims(k>=K) = %v", got)
	}
	if got := SelectDims(space, sample, 0); len(got) != 4 {
		t.Fatalf("SelectDims(0) = %v", got)
	}
	// Empty sample: stable fallback.
	if got := SelectDims(space, nil, 2); len(got) != 2 {
		t.Fatalf("SelectDims(empty) = %v", got)
	}
}
