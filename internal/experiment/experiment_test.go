package experiment

import (
	"strings"
	"testing"

	"bluedove/internal/workload"
)

// The experiment drivers run at ScaleTiny here: these tests check that each
// figure driver produces structurally sound results and the paper's
// qualitative orderings, not absolute numbers (bench targets regenerate the
// full figures at ScaleSmall/ScalePaper).

func TestScales(t *testing.T) {
	for _, sc := range []Scale{ScaleTiny(), ScaleSmall(), ScalePaper()} {
		if sc.Space == nil || sc.Subs <= 0 || len(sc.MatcherCounts) == 0 {
			t.Errorf("%s: incomplete scale", sc.Name)
		}
		if sc.PerScanCost <= 0 || sc.BaseMatchCost <= 0 {
			t.Errorf("%s: missing cost model", sc.Name)
		}
		w := sc.Workload()
		if w.Space != sc.Space {
			t.Errorf("%s: workload space mismatch", sc.Name)
		}
	}
}

func TestEstimateCapacityOrdering(t *testing.T) {
	sc := ScaleTiny()
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	probes := workload.New(wcfg).Messages(200)
	bd4 := EstimateCapacity(sc, 4, BlueDoveVariant(), subs, probes)
	bd8 := EstimateCapacity(sc, 8, BlueDoveVariant(), subs, probes)
	fr8 := EstimateCapacity(sc, 8, FullRepVariant(1), subs, probes)
	if bd4 <= 0 || bd8 <= 0 || fr8 <= 0 {
		t.Fatalf("estimates: %g %g %g", bd4, bd8, fr8)
	}
	if bd8 <= bd4 {
		t.Errorf("estimate should grow with matchers: %g -> %g", bd4, bd8)
	}
	if fr8 >= bd8 {
		t.Errorf("full replication should estimate below BlueDove: %g vs %g", fr8, bd8)
	}
}

func TestSaturationRateOrdering(t *testing.T) {
	sc := ScaleTiny()
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	bd := SaturationRate(sc, 8, BlueDoveVariant(), wcfg, subs)
	p2p := SaturationRate(sc, 8, P2PVariant(), wcfg, subs)
	fr := SaturationRate(sc, 8, FullRepVariant(sc.Seed), wcfg, subs)
	if bd <= p2p {
		t.Errorf("BlueDove (%g) should beat P2P (%g)", bd, p2p)
	}
	if bd <= fr {
		t.Errorf("BlueDove (%g) should beat Full-Rep (%g)", bd, fr)
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5(ScaleTiny())
	if r.SatRate <= 0 || len(r.Below) < 10 || len(r.Above) < 10 {
		t.Fatalf("degenerate result: %+v", r)
	}
	// Below saturation: the steady-state response stays flat (compare the
	// middle and the end of the run).
	nb := len(r.Below)
	midB, endB := r.Below[nb/2].V, r.Below[nb-2].V
	if endB > 20*midB && endB > 0.5 {
		t.Errorf("below-saturation response grew: mid=%g end=%g", midB, endB)
	}
	// Above saturation: the response at the end must greatly exceed the
	// below-saturation response.
	na := len(r.Above)
	endA := r.Above[na-2].V
	if endA < 5*endB {
		t.Errorf("above-saturation response did not grow: %g vs below %g", endA, endB)
	}
	tbl := r.Table().String()
	if !strings.Contains(tbl, "Figure 5") {
		t.Error("table title")
	}
}

func TestFig6aShape(t *testing.T) {
	sc := ScaleTiny()
	r := Fig6a(sc)
	if len(r.Labels) != 3 {
		t.Fatalf("labels: %v", r.Labels)
	}
	for _, l := range r.Labels {
		if len(r.Rates[l]) != len(sc.MatcherCounts) {
			t.Fatalf("%s: wrong sweep length", l)
		}
	}
	last := len(sc.MatcherCounts) - 1
	// BlueDove must scale up with matchers and beat both baselines at the
	// largest size.
	bd := r.Rates["BlueDove"]
	if bd[last] <= bd[0] {
		t.Errorf("BlueDove did not scale: %v", bd)
	}
	if r.Gain("P2P", last) <= 1 || r.Gain("Full-Rep", last) <= 1 {
		t.Errorf("gains: p2p=%.2f fullrep=%.2f", r.Gain("P2P", last), r.Gain("Full-Rep", last))
	}
	if !strings.Contains(r.Table().String(), "Figure 6(a)") {
		t.Error("table title")
	}
}

func TestFig6bShape(t *testing.T) {
	sc := ScaleTiny()
	r := Fig6b(sc)
	last := len(sc.MatcherCounts) - 1
	bd := r.MaxSubs["BlueDove"]
	if bd[last] <= 0 {
		t.Fatalf("BlueDove max subs: %v", bd)
	}
	if bd[last] < bd[0] {
		t.Errorf("max subscriptions should grow with matchers: %v", bd)
	}
	if r.Gain("Full-Rep", last) <= 1 {
		t.Errorf("full-rep gain = %.2f, want > 1", r.Gain("Full-Rep", last))
	}
	if !strings.Contains(r.Table().String(), "Figure 6(b)") {
		t.Error("table title")
	}
}

func TestFig7Shape(t *testing.T) {
	r := Fig7(ScaleTiny())
	if len(r.Policies) != 4 || len(r.Rates) != 4 {
		t.Fatalf("policies: %v", r.Policies)
	}
	if g := r.GainOverRandom(); g <= 1 {
		t.Errorf("adaptive should beat random: gain %.2f", g)
	}
	if !strings.Contains(r.Table().String(), "Figure 7") {
		t.Error("table title")
	}
}

func TestFig8Shape(t *testing.T) {
	r := Fig8(ScaleTiny())
	if len(r.BlueDove) == 0 || len(r.P2P) == 0 {
		t.Fatal("missing utilizations")
	}
	if r.NormStdBlueDove >= r.NormStdP2P {
		t.Errorf("BlueDove should balance better: %.3f vs %.3f", r.NormStdBlueDove, r.NormStdP2P)
	}
	if !strings.Contains(r.Table().String(), "Figure 8") {
		t.Error("table title")
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(ScaleTiny())
	if len(r.JoinTimesSec) == 0 {
		t.Fatal("elasticity never added a matcher")
	}
	if r.FinalMatchers <= r.StartMatchers {
		t.Errorf("final %d <= start %d", r.FinalMatchers, r.StartMatchers)
	}
	if len(r.Resp) < 30 {
		t.Errorf("response series too short: %d", len(r.Resp))
	}
	if !strings.Contains(r.Table().String(), "Figure 9") {
		t.Error("table title")
	}
}

func TestFig10Shape(t *testing.T) {
	r := Fig10(ScaleTiny())
	if len(r.KillTimesSec) == 0 {
		t.Fatal("no failures injected")
	}
	if r.PeakLoss <= 0 {
		t.Error("expected loss spikes after crashes")
	}
	if r.PeakLoss > 0.6 {
		t.Errorf("peak loss %.2f implausibly high", r.PeakLoss)
	}
	if r.MeanRecoverySec <= 0 || r.MeanRecoverySec > 60 {
		t.Errorf("recovery = %.1fs, want within a minute", r.MeanRecoverySec)
	}
	if !strings.Contains(r.Table().String(), "Figure 10") {
		t.Error("table title")
	}
}

func TestFig11Shapes(t *testing.T) {
	sc := ScaleTiny()
	a := Fig11a(sc)
	if len(a.Dims) != sc.Space.K() {
		t.Fatalf("fig11a dims: %v", a.Dims)
	}
	if a.Rates[len(a.Rates)-1] <= a.Rates[0] {
		t.Errorf("more dimensions should raise the rate: %v", a.Rates)
	}
	b := Fig11b(sc)
	if len(b.StdDevs) != 4 {
		t.Fatalf("fig11b sweep: %v", b.StdDevs)
	}
	if b.Rates[len(b.Rates)-1] >= b.Rates[0] {
		t.Errorf("flatter subscriptions should lower the rate: %v", b.Rates)
	}
	c := Fig11c(sc)
	if len(c.SkewedDims) != sc.Space.K()+1 {
		t.Fatalf("fig11c sweep: %v", c.SkewedDims)
	}
	if c.Rates[len(c.Rates)-1] >= c.Rates[0] {
		t.Errorf("adverse skew should lower the rate: %v", c.Rates)
	}
	for _, tb := range []string{a.Table().String(), b.Table().String(), c.Table().String()} {
		if !strings.Contains(tb, "Figure 11") {
			t.Error("table title")
		}
	}
}

func TestOverheadShape(t *testing.T) {
	r := Overhead(ScaleTiny())
	if r.GossipBpsPerMatcher <= 0 || r.PullBpsPerDispatcher <= 0 || r.PushBpsPerMatcher <= 0 {
		t.Fatalf("zero overhead components: %+v", r)
	}
	// Sanity: maintenance traffic is small (well under 100 KB/s/matcher).
	if r.TotalBpsPerMatcher > 100_000 {
		t.Errorf("total overhead %.0f B/s implausibly high", r.TotalBpsPerMatcher)
	}
	if r.TableBytes <= 0 {
		t.Error("table size")
	}
	if !strings.Contains(r.Table().String(), "overhead") {
		t.Error("table title")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Header: []string{"a", "bb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", 10000.0)
	out := tb.String()
	for _, want := range []string{"== T ==", "n", "a", "bb", "2.500", "10000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
}

func TestPersistenceExtension(t *testing.T) {
	r := Persistence(ScaleTiny())
	if r.LossBase <= 0 {
		t.Fatal("baseline lost nothing; crash window not exercised")
	}
	if r.LossPersist != 0 {
		t.Fatalf("persistence lost %.4f%%", 100*r.LossPersist)
	}
	if r.Retries == 0 {
		t.Fatal("no retries recorded")
	}
	if !strings.Contains(r.Table().String(), "persistence") {
		t.Error("table title")
	}
}

func TestDimSelectExtension(t *testing.T) {
	r := DimSelect(ScaleTiny())
	if len(r.Selected) != 2 {
		t.Fatalf("selected = %v", r.Selected)
	}
	if r.CopiesSelected >= r.CopiesAll {
		t.Errorf("selection should store fewer copies: %d vs %d", r.CopiesSelected, r.CopiesAll)
	}
	if r.RateSelected <= 0 || r.RateAll <= 0 {
		t.Fatalf("rates: %g %g", r.RateAll, r.RateSelected)
	}
	if !strings.Contains(r.Table().String(), "attribute selection") {
		t.Error("table title")
	}
}
