// Federation benchmark on the real border tier: two complete clusters on the
// in-process mesh, joined by border dispatchers exchanging interest
// summaries (internal/federation). Three phases, each on a fresh federation:
//
//   - suppression: cluster 2's interest is a narrow band; cluster 1 publishes
//     a disjoint workload that must die at the origin border (nothing
//     crosses the link), then an in-band workload that must all cross and
//     deliver — the no-false-negative check riding the real match path.
//   - latency: full-space subscribers in both clusters; each publication
//     carries its send time in the payload (the receiving border reassigns
//     IDs and publish timestamps, so the payload is the only stable clock),
//     yielding intra-cluster vs cross-cluster delivery percentiles.
//   - link flap: an acked publisher bursts while the inter-cluster link is
//     partitioned mid-burst and healed later; every acked publication must
//     eventually arrive in the remote cluster (zero acked loss), carried by
//     the border's pending-forward retry machinery.
//
// All randomness derives from one seed, printed by the CLI for replay.
package experiment

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/metrics"
)

// FederationOpts parameterizes the federation benchmark.
type FederationOpts struct {
	Seed         int64 // drives attrs and fault timing (default 1)
	DisjointPubs int   // suppression-phase out-of-band publications (default 400)
	InBandPubs   int   // suppression-phase in-band publications (default 100)
	LatencyPubs  int   // latency-phase publications (default 400)
	FlapPubs     int   // link-flap burst length (default 150)
}

func (o FederationOpts) withDefaults() FederationOpts {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DisjointPubs <= 0 {
		o.DisjointPubs = 400
	}
	if o.InBandPubs <= 0 {
		o.InBandPubs = 100
	}
	if o.LatencyPubs <= 0 {
		o.LatencyPubs = 400
	}
	if o.FlapPubs <= 0 {
		o.FlapPubs = 150
	}
	return o
}

// FederationResult is the benchmark outcome.
type FederationResult struct {
	Seed int64

	// Suppression phase.
	DisjointPubs     int
	InBandPubs       int
	CrossedDisjoint  int64   // FedPublish frames the disjoint workload put on the link
	CrossedInBand    int64   // in-band frames that crossed (should be all of them)
	InBandDelivered  int     // in-band publications delivered remotely
	SuppressionRatio float64 // fraction of the disjoint workload kept off the link
	RemoteLeaks      int     // disjoint publications that reached a remote subscriber

	// Latency phase (milliseconds).
	LatencyPubs int
	IntraP50    float64
	IntraP99    float64
	CrossP50    float64
	CrossP99    float64

	// Link-flap phase.
	FlapPubs      int
	FlapAcked     int
	FlapRetries   int64
	ZeroAckedLoss bool
	LossDetail    string
}

// Table renders the human-readable report.
func (r *FederationResult) Table() fmt.Stringer {
	return fedTable{r}
}

type fedTable struct{ r *FederationResult }

func (t fedTable) String() string {
	r := t.r
	return fmt.Sprintf(`federation benchmark (seed %d)
  suppression: %d disjoint pubs, %d crossed the link (ratio %.3f, %d remote leaks)
               %d in-band pubs, %d crossed, %d delivered remotely
  latency:     intra-cluster p50 %.2fms p99 %.2fms
               cross-cluster p50 %.2fms p99 %.2fms
  link flap:   %d/%d acked through partition+heal, %d border retries, zero acked loss: %v%s`,
		r.Seed,
		r.DisjointPubs, r.CrossedDisjoint, r.SuppressionRatio, r.RemoteLeaks,
		r.InBandPubs, r.CrossedInBand, r.InBandDelivered,
		r.IntraP50, r.IntraP99, r.CrossP50, r.CrossP99,
		r.FlapAcked, r.FlapPubs, r.FlapRetries, r.ZeroAckedLoss,
		map[bool]string{true: "", false: " (" + r.LossDetail + ")"}[r.ZeroAckedLoss])
}

// fedBenchOptions is the two-cluster topology every phase boots: small and
// fast-converging, matching the cluster test defaults.
func fedBenchOptions() cluster.Options {
	return cluster.Options{
		Space:              core.UniformSpace(4, 1000),
		Matchers:           2,
		Dispatchers:        2,
		GossipInterval:     50 * time.Millisecond,
		FailAfter:          500 * time.Millisecond,
		ReportInterval:     50 * time.Millisecond,
		RecoveryDelay:      200 * time.Millisecond,
		PruneGrace:         300 * time.Millisecond,
		FedSummaryInterval: 50 * time.Millisecond,
	}
}

// fedCounter tallies deliveries by payload.
type fedCounter struct {
	mu   sync.Mutex
	seen map[string]int
}

func newFedCounter() *fedCounter { return &fedCounter{seen: map[string]int{}} }

func (c *fedCounter) onDeliver(m *core.Message, _ []core.SubscriptionID) {
	c.mu.Lock()
	c.seen[string(m.Payload)]++
	c.mu.Unlock()
}

func (c *fedCounter) count(p string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.seen[p]
}

func (c *fedCounter) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.seen {
		n += v
	}
	return n
}

func fedPoll(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// FederationTier runs the three-phase federation benchmark.
func FederationTier(opts FederationOpts) (*FederationResult, error) {
	opts = opts.withDefaults()
	r := &FederationResult{
		Seed:         opts.Seed,
		DisjointPubs: opts.DisjointPubs,
		InBandPubs:   opts.InBandPubs,
		LatencyPubs:  opts.LatencyPubs,
		FlapPubs:     opts.FlapPubs,
	}
	if err := fedSuppressionPhase(opts, r); err != nil {
		return nil, fmt.Errorf("suppression phase: %w", err)
	}
	if err := fedLatencyPhase(opts, r); err != nil {
		return nil, fmt.Errorf("latency phase: %w", err)
	}
	if err := fedFlapPhase(opts, r); err != nil {
		return nil, fmt.Errorf("link-flap phase: %w", err)
	}
	return r, nil
}

func fedSuppressionPhase(opts FederationOpts, r *FederationResult) error {
	f, err := cluster.StartFederated(2, fedBenchOptions())
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.WaitForTables(1, 10*time.Second); err != nil {
		return err
	}

	// Cluster 2's interest: dim0 in [800, 900). Cluster 1 keeps a local
	// full-space subscriber so every publication demonstrably matched
	// somewhere.
	remoteRec := newFedCounter()
	remoteCl, err := f.Clusters[1].NewClient(0, remoteRec.onDeliver)
	if err != nil {
		return err
	}
	if _, err := remoteCl.Subscribe([]core.Range{{Low: 800, High: 900},
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		return err
	}
	localRec := newFedCounter()
	localCl, err := f.Clusters[0].NewClient(0, localRec.onDeliver)
	if err != nil {
		return err
	}
	if _, err := localCl.Subscribe([]core.Range{{Low: 0, High: 1000},
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		return err
	}

	b1 := f.Clusters[0].Borders()[0]
	remoteAddr := f.Clusters[1].BorderAddrs()[0]
	if !fedPoll(10*time.Second, func() bool {
		s := b1.RemoteSummary(remoteAddr)
		return s != nil && s.Matches([]float64{850, 500, 500, 500})
	}) {
		return fmt.Errorf("cluster 2 summary never reached cluster 1")
	}

	pub, err := f.Clusters[0].NewClient(1, nil)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	for i := 0; i < opts.DisjointPubs; i++ {
		attrs := []float64{rng.Float64() * 700, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000}
		if err := pub.Publish(attrs, []byte(fmt.Sprintf("dis-%d", i))); err != nil {
			return err
		}
	}
	// Every disjoint publication must land locally before we read the link
	// counters.
	if !fedPoll(30*time.Second, func() bool { return localRec.total() >= opts.DisjointPubs }) {
		return fmt.Errorf("local deliveries stalled at %d/%d", localRec.total(), opts.DisjointPubs)
	}
	time.Sleep(200 * time.Millisecond) // drain any in-flight link traffic
	r.CrossedDisjoint = b1.FedForwarded.Value()
	r.SuppressionRatio = 1 - float64(r.CrossedDisjoint)/float64(opts.DisjointPubs)
	r.RemoteLeaks = remoteRec.total()

	for i := 0; i < opts.InBandPubs; i++ {
		attrs := []float64{800 + rng.Float64()*100, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000}
		if err := pub.Publish(attrs, []byte(fmt.Sprintf("band-%d", i))); err != nil {
			return err
		}
	}
	if !fedPoll(30*time.Second, func() bool {
		return remoteRec.total()-r.RemoteLeaks >= opts.InBandPubs
	}) {
		return fmt.Errorf("in-band deliveries stalled at %d/%d",
			remoteRec.total()-r.RemoteLeaks, opts.InBandPubs)
	}
	r.CrossedInBand = b1.FedForwarded.Value() - r.CrossedDisjoint
	r.InBandDelivered = remoteRec.total() - r.RemoteLeaks
	return nil
}

// fedStamp collects payload-embedded send-time latencies.
type fedStamp struct {
	mu   sync.Mutex
	hist *metrics.Histogram
}

func (s *fedStamp) onDeliver(m *core.Message, _ []core.SubscriptionID) {
	if len(m.Payload) < 8 {
		return
	}
	sent := int64(binary.LittleEndian.Uint64(m.Payload))
	s.mu.Lock()
	s.hist.Observe(time.Now().UnixNano() - sent)
	s.mu.Unlock()
}

func (s *fedStamp) count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hist.Count()
}

func (s *fedStamp) quantileMs(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return float64(s.hist.Quantile(q)) / 1e6
}

func fedLatencyPhase(opts FederationOpts, r *FederationResult) error {
	f, err := cluster.StartFederated(2, fedBenchOptions())
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.WaitForTables(1, 10*time.Second); err != nil {
		return err
	}

	full := []core.Range{{Low: 0, High: 1000}, {Low: 0, High: 1000},
		{Low: 0, High: 1000}, {Low: 0, High: 1000}}
	intra := &fedStamp{hist: metrics.NewHistogram()}
	cross := &fedStamp{hist: metrics.NewHistogram()}
	intraCl, err := f.Clusters[0].NewClient(0, intra.onDeliver)
	if err != nil {
		return err
	}
	if _, err := intraCl.Subscribe(full); err != nil {
		return err
	}
	crossCl, err := f.Clusters[1].NewClient(0, cross.onDeliver)
	if err != nil {
		return err
	}
	if _, err := crossCl.Subscribe(full); err != nil {
		return err
	}

	b1 := f.Clusters[0].Borders()[0]
	remoteAddr := f.Clusters[1].BorderAddrs()[0]
	if !fedPoll(10*time.Second, func() bool {
		s := b1.RemoteSummary(remoteAddr)
		return s != nil && !s.Empty()
	}) {
		return fmt.Errorf("cluster 2 summary never reached cluster 1")
	}

	pub, err := f.Clusters[0].NewClient(1, nil)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	payload := make([]byte, 8)
	for i := 0; i < opts.LatencyPubs; i++ {
		attrs := []float64{rng.Float64() * 1000, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000}
		binary.LittleEndian.PutUint64(payload, uint64(time.Now().UnixNano()))
		if err := pub.Publish(attrs, payload); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond) // paced: latency, not saturation
	}
	want := int64(opts.LatencyPubs)
	if !fedPoll(30*time.Second, func() bool {
		return intra.count() >= want && cross.count() >= want
	}) {
		return fmt.Errorf("latency deliveries stalled: intra %d cross %d of %d",
			intra.count(), cross.count(), want)
	}
	r.IntraP50 = intra.quantileMs(0.5)
	r.IntraP99 = intra.quantileMs(0.99)
	r.CrossP50 = cross.quantileMs(0.5)
	r.CrossP99 = cross.quantileMs(0.99)
	return nil
}

func fedFlapPhase(opts FederationOpts, r *FederationResult) error {
	o := fedBenchOptions()
	o.Chaos = chaos.NewController(opts.Seed)
	o.Persistent = true
	f, err := cluster.StartFederated(2, o)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.WaitForTables(1, 10*time.Second); err != nil {
		return err
	}

	rec := newFedCounter()
	sub, err := f.Clusters[1].NewClient(0, rec.onDeliver)
	if err != nil {
		return err
	}
	if _, err := sub.Subscribe([]core.Range{{Low: 0, High: 1000}, {Low: 0, High: 1000},
		{Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		return err
	}
	b1 := f.Clusters[0].Borders()[0]
	remoteAddr := f.Clusters[1].BorderAddrs()[0]
	if !fedPoll(10*time.Second, func() bool {
		s := b1.RemoteSummary(remoteAddr)
		return s != nil && !s.Empty()
	}) {
		return fmt.Errorf("cluster 2 summary never reached cluster 1")
	}

	pub, err := f.Clusters[0].NewAckClient(0)
	if err != nil {
		return err
	}
	if !fedPoll(10*time.Second, func() bool {
		if err := pub.Publish([]float64{500, 500, 500, 500}, []byte("warm")); err != nil {
			return false
		}
		time.Sleep(20 * time.Millisecond)
		return rec.count("warm") > 0
	}) {
		return fmt.Errorf("pre-fault cross-cluster path never delivered")
	}

	rng := rand.New(rand.NewSource(opts.Seed + 2))
	var acked []string
	for i := 0; i < opts.FlapPubs; i++ {
		if i == opts.FlapPubs/3 {
			if err := f.PartitionBorderLinks(0, 1, true); err != nil {
				return err
			}
		}
		if i == 2*opts.FlapPubs/3 {
			if err := f.PartitionBorderLinks(0, 1, false); err != nil {
				return err
			}
		}
		payload := fmt.Sprintf("burst-%d", i)
		attrs := []float64{float64(rng.Intn(1000)), float64(rng.Intn(1000)),
			float64(rng.Intn(1000)), float64(rng.Intn(1000))}
		if err := pub.Publish(attrs, []byte(payload)); err != nil {
			continue // not acked: outside the loss contract
		}
		acked = append(acked, payload)
		time.Sleep(2 * time.Millisecond)
	}
	r.FlapAcked = len(acked)
	if len(acked) == 0 {
		return fmt.Errorf("no publications were admitted during the flap")
	}

	r.ZeroAckedLoss = fedPoll(60*time.Second, func() bool {
		for _, p := range acked {
			if rec.count(p) == 0 {
				return false
			}
		}
		return true
	})
	if !r.ZeroAckedLoss {
		missing := 0
		first := ""
		for _, p := range acked {
			if rec.count(p) == 0 {
				if first == "" {
					first = p
				}
				missing++
			}
		}
		r.LossDetail = fmt.Sprintf("%d acked publications missing remotely (first: %s)", missing, first)
	}
	r.FlapRetries = b1.Retries.Value()
	return nil
}
