package experiment

import (
	"fmt"
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Fig9Result reproduces Figure 9 (elasticity): the message rate ramps up in
// steps; whenever a dispatcher detects saturation a new matcher joins, and
// the response time drops back within seconds.
type Fig9Result struct {
	// Scale names the run scale.
	Scale string
	// StartMatchers is the initial system size (paper: 5).
	StartMatchers int
	// Ramp describes the applied schedule.
	Ramp workload.StepRamp
	// Resp is the 1-second-averaged response time (seconds) over the run.
	Resp []metrics.Point
	// JoinTimesSec lists when new matchers joined (seconds).
	JoinTimesSec []float64
	// FinalMatchers is the matcher count at the end of the run.
	FinalMatchers int
}

// Fig9 regenerates Figure 9 at the given scale. The ramp is sized to the
// measured capacity of the starting system so the controller is exercised
// regardless of scale.
func Fig9(sc Scale) *Fig9Result {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	start := sc.MatcherCounts[0]
	cap0 := SaturationRate(sc, start, BlueDoveVariant(), wcfg, subs)

	cfg := sc.SimConfig(start, BlueDoveVariant().Strategy, BlueDoveVariant().Policy)
	cfg.Elastic = true
	cfg.ElasticCheckInterval = 5 * time.Second
	cfg.ElasticCooldown = 15 * time.Second
	cl := sim.NewCluster(cfg)
	cl.SubscribeAll(subs)

	// Paper: +500 msg/s every 5 minutes from 500 msg/s. Scaled: start at
	// 70% of the 5-matcher capacity and add 15% of it every 40 seconds, so
	// each matcher join (+~20% capacity) outpaces the ramp and the response
	// time recovers between steps, as in the paper's figure.
	ramp := workload.StepRamp{
		Initial:   0.7 * cap0,
		Increment: 0.15 * cap0,
		Interval:  40 * time.Second,
	}
	const dur = 6 * time.Minute
	gen := workload.New(wcfg)
	cl.Drive(gen, ramp, int64(dur))
	cl.RunUntil(int64(dur))
	// Drain so every arrival's response is recorded (series keyed by
	// arrival time).
	for i := 0; i < 120 && cl.TotalBacklog() > 0; i++ {
		cl.RunFor(time.Second)
	}

	r := &Fig9Result{
		Scale:         sc.Name,
		StartMatchers: start,
		Ramp:          ramp,
		Resp:          cl.Stats().RespSeries.Downsample(int64(time.Second)),
		FinalMatchers: len(cl.Matchers()),
	}
	for _, t := range cl.JoinTimes() {
		r.JoinTimesSec = append(r.JoinTimesSec, float64(t)/1e9)
	}
	return r
}

// Table renders the response-time series with join markers.
func (r *Fig9Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 9: elasticity under a rate ramp, starting at %d matchers (%s scale)", r.StartMatchers, r.Scale),
		Note: fmt.Sprintf("paper: response drops ~5s after each join; joins here at %v s; final size %d",
			compactTimes(r.JoinTimesSec), r.FinalMatchers),
		Header: []string{"t(s)", "response (s)", "event"},
	}
	joins := map[int64]bool{}
	for _, j := range r.JoinTimesSec {
		joins[int64(j)] = true
	}
	for _, p := range r.Resp {
		sec := p.T / 1e9
		ev := ""
		if joins[sec] {
			ev = "+matcher"
		}
		t.AddRow(sec, p.V, ev)
	}
	return t
}

func compactTimes(ts []float64) []string {
	out := make([]string, len(ts))
	for i, v := range ts {
		out[i] = fmt.Sprintf("%.0f", v)
	}
	return out
}
