package experiment

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/placement"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Variant names one system configuration under test.
type Variant struct {
	// Label identifies the variant in tables ("BlueDove", "P2P", ...).
	Label string
	// Strategy is the placement strategy.
	Strategy placement.Strategy
	// Policy is the forwarding policy.
	Policy forward.Policy
	// Index is the matcher index kind, which defines the matching cost
	// model (KindScan: cost proportional to the whole stored set).
	Index index.Kind
}

// BlueDoveVariant is the paper's system: mPartition + adaptive forwarding +
// a per-dimension-set index ("builds a separate index for each subset" —
// the paper credits grouped subscriptions and reduced index search time as
// a key factor for throughput).
func BlueDoveVariant() Variant {
	return Variant{Label: "BlueDove", Strategy: placement.BlueDove{},
		Policy: forward.Adaptive{}, Index: index.KindBucket}
}

// P2PVariant is the single-dimension DHT baseline. It shares BlueDove's
// matcher code (and index), as in the paper's comparison setup.
func P2PVariant() Variant {
	return Variant{Label: "P2P", Strategy: placement.P2P{},
		Policy: forward.Adaptive{}, Index: index.KindBucket}
}

// FullRepVariant is the full-replication baseline with random dispatch.
// Its matchers search the entire subscription set linearly — the paper:
// "the matching time is not reduced because each matcher needs to search
// all subscriptions".
func FullRepVariant(seed int64) Variant {
	return Variant{Label: "Full-Rep", Strategy: placement.FullRep{},
		Policy: forward.NewRandom(seed), Index: index.KindScan}
}

// SaturationRate finds the saturation message rate of a variant at the
// given system size, bracketing the search with the static capacity
// estimate.
func SaturationRate(sc Scale, matchers int, v Variant,
	wcfg workload.Config, subs []*core.Subscription) float64 {
	probes := workload.New(wcfg).Messages(400)
	est := EstimateCapacity(sc, matchers, v, subs, probes)
	search := &sim.SaturationSearch{
		Build: func() *sim.Cluster {
			return sim.NewCluster(sc.VariantConfig(matchers, v))
		},
		Subscriptions: subs,
		Workload:      wcfg,
		Warmup:        sc.SatWarmup,
		Measure:       sc.SatMeasure,
		Tolerance:     sc.SatTolerance,
		LoRate:        est * 0.25,
		HiRate:        est * 2.5,
	}
	return search.Find()
}

// SaturationRateWithReportInterval is SaturationRate with the matcher
// load-report interval stretched to the given number of seconds — the
// report-staleness ablation for the adaptive policy's extrapolation.
func SaturationRateWithReportInterval(sc Scale, matchers int, v Variant,
	wcfg workload.Config, subs []*core.Subscription, seconds int) float64 {
	probes := workload.New(wcfg).Messages(400)
	est := EstimateCapacity(sc, matchers, v, subs, probes)
	search := &sim.SaturationSearch{
		Build: func() *sim.Cluster {
			cfg := sc.VariantConfig(matchers, v)
			cfg.ReportInterval = time.Duration(seconds) * time.Second
			return sim.NewCluster(cfg)
		},
		Subscriptions: subs,
		Workload:      wcfg,
		Warmup:        sc.SatWarmup,
		Measure:       sc.SatMeasure,
		Tolerance:     sc.SatTolerance,
		LoRate:        est * 0.25,
		HiRate:        est * 2.5,
	}
	return search.Find()
}
