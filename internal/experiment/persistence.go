package experiment

import (
	"fmt"
	"time"

	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// PersistenceResult evaluates the message-persistence extension (paper
// Section VI future work: "add message persistence mechanism to support
// applications that do not tolerate message loss") under the Figure 10
// crash workload: matchers are killed under steady load, with and without
// persistence.
type PersistenceResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the starting system size.
	Matchers int
	// Rate is the steady offered load.
	Rate float64
	// LossBase and LossPersist are whole-run loss fractions.
	LossBase, LossPersist float64
	// Retries counts persistence re-forwards.
	Retries int64
	// MeanRespBaseMs and MeanRespPersistMs compare mean response times.
	MeanRespBaseMs, MeanRespPersistMs float64
}

// Persistence runs the crash workload twice and compares.
func Persistence(sc Scale) *PersistenceResult {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	sat := SaturationRate(sc, n, BlueDoveVariant(), wcfg, subs)
	rate := 0.4 * sat

	run := func(persistent bool) (loss float64, retries int64, meanMs float64) {
		v := BlueDoveVariant()
		cfg := sc.VariantConfig(n, v)
		cfg.Persistent = persistent
		cfg.FailureDetectDelay = 10 * time.Second
		cfg.RecoveryDelay = 5 * time.Second
		cl := sim.NewCluster(cfg)
		cl.SubscribeAll(subs)
		gen := workload.New(wcfg)
		const killEvery, kills = 60 * time.Second, 2
		dur := killEvery * (kills + 1)
		cl.Drive(gen, workload.ConstantRate(rate), int64(dur))
		for i := 1; i <= kills; i++ {
			at := int64(killEvery) * int64(i)
			cl.Engine().At(at, func() { _, _ = cl.FailRandomMatcher() })
		}
		cl.RunUntil(int64(dur))
		cl.RunFor(30 * time.Second) // drain retries
		st := cl.Stats()
		return st.LossFraction(), st.PersistRetries.Value(), st.RespHist.Mean() / 1e6
	}
	r := &PersistenceResult{Scale: sc.Name, Matchers: n, Rate: rate}
	r.LossBase, _, r.MeanRespBaseMs = run(false)
	r.LossPersist, r.Retries, r.MeanRespPersistMs = run(true)
	return r
}

// Table renders the comparison.
func (r *PersistenceResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension (paper §VI): message persistence under crashes, %d matchers at %.0f msg/s (%s scale)",
			r.Matchers, r.Rate, r.Scale),
		Note:   "paper future work: 'BlueDove may lose a few messages after a server failure... we will add message persistence'",
		Header: []string{"variant", "loss", "retries", "mean response (ms)"},
	}
	t.AddRow("baseline", fmt.Sprintf("%.3f%%", 100*r.LossBase), 0, r.MeanRespBaseMs)
	t.AddRow("persistent", fmt.Sprintf("%.3f%%", 100*r.LossPersist), r.Retries, r.MeanRespPersistMs)
	return t
}
