// Elasticity evaluation: the tentpole experiment behind BENCH_elasticity.json.
//
// Two segments share one seed. The simulator segment ramps a σ-skewed
// workload on the virtual clock: a 2-matcher cluster absorbs a surge far
// above its capacity, the embedded elastic.Controller scales it up (joins
// and hot-segment splits), and drains it back to the floor when the surge
// passes — the matcher-count timeline and per-phase p99 response times are
// the deliverable. The real-cluster segment runs the same controller against
// the in-process TCP stack under chaos-degraded links with the delivery
// auditor attached, proving that every controller-initiated handover and
// split preserves the acked-delivery invariant.
package experiment

import (
	"fmt"
	"os"
	"sort"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/metrics"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// ElasticityDecision is one journaled controller decision (virtual-clock
// segment).
type ElasticityDecision struct {
	TSec   float64
	Action string
	Target core.NodeID
	To     core.NodeID
	Dim    int
	Reason string
}

// ElasticityPoint is one matcher-count sample.
type ElasticityPoint struct {
	TSec     float64
	Matchers int
}

// ElasticityResult is the combined outcome.
type ElasticityResult struct {
	Seed int64

	// Simulator segment: σ-skewed ramp on the virtual clock.
	SimStartMatchers int
	SimPeakMatchers  int
	SimFinalMatchers int
	SimScaleUps      int64
	SimScaleDowns    int64
	SimSplits        int64
	SimThrash        int64
	SimLost          int64
	SimDecisions     []ElasticityDecision
	SimMatcherSeries []ElasticityPoint
	// Per-phase p99 response times (seconds): before the surge, late in the
	// surge after the controller has scaled, and after the drain back down.
	BaselineP99Sec   float64
	ScaledSurgeP99   float64
	RecoveredP99     float64
	SurgeP99Factor   float64 // ScaledSurgeP99 / BaselineP99Sec
	P99WithinTwofold bool

	// Real-cluster segment: controller-driven drain + split under chaos.
	ChaosStartMatchers int
	ChaosFinalMatchers int
	ChaosScaleDowns    int64
	ChaosSplits        int64
	ChaosPublished     int
	ChaosDuplicates    int
	ChaosZeroLoss      bool
	ChaosLossDetail    string
}

// Phase boundaries of the simulated ramp (virtual seconds).
const (
	elBaselineRate = 300.0
	elSurgeRate    = 3500.0
	elIdleRate     = 150.0
	elSurgeFrom    = 20
	elSurgeUntil   = 140
	elDriveUntil   = 260
	elRunUntil     = 300
)

// Elasticity runs both segments. Given the same seed the simulator segment
// is bit-for-bit reproducible (decisions included); the chaos segment's
// fault schedule replays from the same seed.
func Elasticity(seed int64) (*ElasticityResult, error) {
	if seed == 0 {
		seed = 1
	}
	r := &ElasticityResult{Seed: seed}
	elasticitySim(seed, r)
	if err := elasticityChaos(seed, r); err != nil {
		return nil, err
	}
	return r, nil
}

// elasticitySim drives the σ-skewed ramp on the virtual clock.
func elasticitySim(seed int64, r *ElasticityResult) {
	space := core.UniformSpace(4, 1000)
	wcfg := workload.Default(space)
	wcfg.Seed = seed
	// σ-skew: predicate centers cluster tightly around per-dimension hot
	// spots and the messages' leading dimensions follow the same
	// distribution, so the load lands on a narrow slice of the space.
	wcfg.SubStdDev = 70
	wcfg.SkewedMsgDims = 3

	cfg := sim.Config{
		Space:    space,
		Matchers: 2,
		Seed:     seed,
		// Inflated matching costs keep the event count small; controller
		// behaviour is cost-scale invariant.
		BaseMatchCost: 200 * time.Microsecond,
		PerScanCost:   3 * time.Microsecond,
		SampleEvery:   1, // record every response: the phases need true p99s
		Elastic:       true,
	}
	cfg.ElasticCheckInterval = 2 * time.Second
	cfg.ElasticConfig = elastic.Config{
		SustainRounds:  2,
		CooldownRounds: 5,
		MinMatchers:    2,
		MaxMatchers:    6,
		OnDecision: func(d elastic.Decision) {
			r.SimDecisions = append(r.SimDecisions, ElasticityDecision{
				TSec:   float64(d.At) / 1e9,
				Action: d.Action.String(),
				Target: d.Target,
				To:     d.To,
				Dim:    d.Dim,
				Reason: d.Reason,
			})
		},
	}
	cl := sim.NewCluster(cfg)
	gen := workload.New(wcfg)
	cl.SubscribeAll(gen.Subscriptions(2000))

	cl.Drive(gen, workload.Steps{
		{From: 0, Rate: elBaselineRate},
		{From: int64(elSurgeFrom * time.Second), Rate: elSurgeRate},
		{From: int64(elSurgeUntil * time.Second), Rate: elIdleRate},
	}, int64(elDriveUntil*time.Second))

	r.SimStartMatchers = 2
	cl.Engine().Every(int64(time.Second), time.Second, func() bool {
		n := len(cl.Matchers())
		if n > r.SimPeakMatchers {
			r.SimPeakMatchers = n
		}
		r.SimMatcherSeries = append(r.SimMatcherSeries, ElasticityPoint{
			TSec: float64(cl.Now()) / 1e9, Matchers: n,
		})
		return true
	})
	cl.RunUntil(int64(elRunUntil * time.Second))

	r.SimFinalMatchers = len(cl.Matchers())
	ctrl := cl.ElasticController()
	r.SimScaleUps = ctrl.ScaleUps.Value()
	r.SimScaleDowns = ctrl.ScaleDowns.Value()
	r.SimSplits = ctrl.Splits.Value()
	r.SimThrash = ctrl.Thrash.Value()
	r.SimLost = cl.Stats().Lost.Value()

	// Phase p99s keyed by arrival time: baseline before the surge, the last
	// 40 surge seconds (the controller has scaled by then; the transient
	// backlog from the under-provisioned start has drained), and the
	// post-drain tail back at the floor.
	points := cl.Stats().RespSeries.Points()
	r.BaselineP99Sec = p99Between(points, 5, elSurgeFrom)
	r.ScaledSurgeP99 = p99Between(points, elSurgeUntil-40, elSurgeUntil)
	r.RecoveredP99 = p99Between(points, 200, elDriveUntil)
	if r.BaselineP99Sec > 0 {
		r.SurgeP99Factor = r.ScaledSurgeP99 / r.BaselineP99Sec
	}
	r.P99WithinTwofold = r.SurgeP99Factor > 0 && r.SurgeP99Factor <= 2
}

// p99Between computes the 99th percentile of series values whose timestamps
// (ns) fall in [fromSec, toSec).
func p99Between(points []metrics.Point, fromSec, toSec int64) float64 {
	var vals []float64
	for _, p := range points {
		sec := p.T / 1e9
		if sec >= fromSec && sec < toSec {
			vals = append(vals, p.V)
		}
	}
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	return vals[int(float64(len(vals)-1)*0.99)]
}

// elasticityChaos runs the controller against the real in-process cluster:
// chaos-degraded links, a full-space audited subscriber, one actuator-driven
// hot-segment split mid-burst, and the controller idling the 4-matcher
// cluster down to its floor of 2 — every handover audited for acked loss.
func elasticityChaos(seed int64, r *ElasticityResult) error {
	ctrl := chaos.NewController(seed)
	defer ctrl.Close()
	dir, err := os.MkdirTemp("", "bluedove-elasticity")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	c, err := cluster.Start(cluster.Options{
		Space:           core.UniformSpace(4, 1000),
		Matchers:        4,
		Dispatchers:     2,
		GossipInterval:  50 * time.Millisecond,
		FailAfter:       500 * time.Millisecond,
		ReportInterval:  50 * time.Millisecond,
		RecoveryDelay:   200 * time.Millisecond,
		PruneGrace:      300 * time.Millisecond,
		Persistent:      true,
		RetryInterval:   100 * time.Millisecond,
		DataDir:         dir,
		Chaos:           ctrl,
		Elastic:         true,
		ElasticInterval: 100 * time.Millisecond,
		DrainGrace:      400 * time.Millisecond,
		ElasticConfig: elastic.Config{
			// The first decision needs ~1.5s of sustained idle — room for
			// the audited split to land before the controller starts
			// draining (and possibly stopping) candidate matchers.
			SustainRounds:  15,
			CooldownRounds: 10,
			MinMatchers:    2,
		},
	})
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return err
	}
	r.ChaosStartMatchers = 4

	full := []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	aud := chaos.NewAuditor()
	aud.Subscribed(1, full)
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		return err
	}
	if _, err := subCl.Subscribe(full); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond) // let the stores land

	// Degrade every dispatcher↔matcher link for the whole run.
	faults := chaos.LinkFaults{Drop: 0.05, Duplicate: 0.05,
		DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, faults)
			ctrl.SetFaults(maddr, daddr, faults)
		}
	}

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		return err
	}

	// A controller-actuator split first: the first matcher's widest dim-0
	// segment is cut and the upper half re-homed — the range handover the
	// burst below must survive.
	ids := c.LiveMatcherIDs()
	if _, err := c.SplitSegment(ids[0], 0, ids[1]); err != nil {
		return fmt.Errorf("experiment: split: %v", err)
	}
	r.ChaosSplits = 1

	// Publish a steady audited burst. The load is far below 4 matchers'
	// capacity, so the embedded controller drains the cluster to its floor
	// mid-traffic — each drain is a controller-initiated range handover.
	const burst = 1500
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("el-%06d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			return fmt.Errorf("experiment: publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(2 * time.Millisecond)
	}

	// Wait for the controller to reach the floor.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(c.LiveMatcherIDs()) <= 2 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	lossErr := aud.WaitComplete(20 * time.Second)

	r.ChaosFinalMatchers = len(c.LiveMatcherIDs())
	r.ChaosScaleDowns = c.ElasticController().ScaleDowns.Value()
	r.ChaosPublished = burst
	r.ChaosDuplicates = aud.Duplicates()
	r.ChaosZeroLoss = lossErr == nil
	if lossErr != nil {
		r.ChaosLossDetail = lossErr.Error()
	}
	return nil
}

// Table renders the combined summary.
func (r *ElasticityResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Elasticity: σ-skewed ramp autoscale (seed %d)", r.Seed),
		Note: fmt.Sprintf("sim %d→%d→%d matchers; chaos segment %d→%d with zero acked loss = %v",
			r.SimStartMatchers, r.SimPeakMatchers, r.SimFinalMatchers,
			r.ChaosStartMatchers, r.ChaosFinalMatchers, r.ChaosZeroLoss),
		Header: []string{"metric", "value"},
	}
	t.AddRow("sim scale-ups", r.SimScaleUps)
	t.AddRow("sim scale-downs", r.SimScaleDowns)
	t.AddRow("sim splits", r.SimSplits)
	t.AddRow("sim thrash", r.SimThrash)
	t.AddRow("sim lost", r.SimLost)
	t.AddRow("baseline p99 (s)", r.BaselineP99Sec)
	t.AddRow("scaled surge p99 (s)", r.ScaledSurgeP99)
	t.AddRow("recovered p99 (s)", r.RecoveredP99)
	t.AddRow("surge/baseline p99 factor", r.SurgeP99Factor)
	t.AddRow("p99 within 2x of baseline", r.P99WithinTwofold)
	t.AddRow("chaos scale-downs", r.ChaosScaleDowns)
	t.AddRow("chaos splits", r.ChaosSplits)
	t.AddRow("chaos duplicates", r.ChaosDuplicates)
	t.AddRow("chaos zero acked loss", r.ChaosZeroLoss)
	return t
}
