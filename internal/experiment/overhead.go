package experiment

import (
	"fmt"
	"time"

	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// OverheadResult reproduces the Section IV-C maintenance-overhead
// measurement: gossip traffic per matcher, segment-table pulls per
// dispatcher, and load-report pushes — the three components the paper
// itemizes (≈2.9 KB/s gossip, 60·N B per pull every 10 s, 64 B pushes,
// totalling ≈2.9K+20·D B/s per matcher).
type OverheadResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers and Dispatchers are the measured deployment size.
	Matchers, Dispatchers int
	// DurationSec is the measurement window.
	DurationSec float64
	// GossipBpsPerMatcher is matcher↔matcher gossip bytes/second/matcher.
	GossipBpsPerMatcher float64
	// PullBpsPerDispatcher is table-pull bytes/second/dispatcher.
	PullBpsPerDispatcher float64
	// PushBpsPerMatcher is load-report bytes/second/matcher.
	PushBpsPerMatcher float64
	// TotalBpsPerMatcher is the per-matcher total (gossip + pushes +
	// amortized pulls).
	TotalBpsPerMatcher float64
	// TableBytes is the encoded segment-table size.
	TableBytes int
}

// Overhead measures maintenance traffic on a loaded 20-matcher cluster.
func Overhead(sc Scale) *OverheadResult {
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	v := BlueDoveVariant()
	cfg := sc.VariantConfig(n, v)
	cl := sim.NewCluster(cfg)
	wcfg := sc.Workload()
	cl.SubscribeAll(workload.New(wcfg).Subscriptions(sc.Subs))
	const dur = 60 * time.Second
	gen := workload.New(wcfg)
	cl.Drive(gen, workload.ConstantRate(500), int64(dur))
	cl.RunUntil(int64(dur))

	st := cl.Stats()
	secs := dur.Seconds()
	d := cfg.Dispatchers
	if d == 0 {
		d = 2
	}
	r := &OverheadResult{
		Scale:       sc.Name,
		Matchers:    n,
		Dispatchers: d,
		DurationSec: secs,
		TableBytes:  len(cl.Table().Encode()),
	}
	r.GossipBpsPerMatcher = float64(st.GossipBytes.Value()) / secs / float64(n)
	r.PullBpsPerDispatcher = float64(st.TablePullBytes.Value()) / secs / float64(d)
	r.PushBpsPerMatcher = float64(st.LoadPushBytes.Value()) / secs / float64(n)
	r.TotalBpsPerMatcher = r.GossipBpsPerMatcher + r.PushBpsPerMatcher +
		float64(st.TablePullBytes.Value())/secs/float64(n)
	return r
}

// Table renders the overhead breakdown.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Section IV-C: overlay maintenance overhead, %d matchers / %d dispatchers (%s scale)",
			r.Matchers, r.Dispatchers, r.Scale),
		Note:   "paper: ~2.9 KB/s gossip per matcher, 60N B per table pull / 10s, 64 B load pushes; total ≈ 2.9K+20D B/s",
		Header: []string{"component", "bytes/s"},
	}
	t.AddRow("gossip per matcher", r.GossipBpsPerMatcher)
	t.AddRow("table pull per dispatcher", r.PullBpsPerDispatcher)
	t.AddRow("load push per matcher", r.PushBpsPerMatcher)
	t.AddRow("total per matcher", r.TotalBpsPerMatcher)
	t.AddRow("segment table bytes", r.TableBytes)
	return t
}
