package experiment

import (
	"fmt"

	"bluedove/internal/forward"
	"bluedove/internal/placement"
	"bluedove/internal/workload"
)

// Fig7Result reproduces Figure 7: the saturation message rate of the
// 20-matcher BlueDove system under the four forwarding policies.
type Fig7Result struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size used (paper: 20).
	Matchers int
	// Policies lists the policy names in evaluation order.
	Policies []string
	// Rates holds the saturation rate per policy.
	Rates []float64
}

// Fig7 regenerates Figure 7 at the given scale.
func Fig7(sc Scale) *Fig7Result {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	policies := []forward.Policy{
		forward.Adaptive{},
		forward.ResponseTime{},
		forward.SubscriptionAmount{},
		forward.NewRandom(sc.Seed),
	}
	r := &Fig7Result{Scale: sc.Name, Matchers: n}
	for _, pol := range policies {
		v := Variant{Label: pol.Name(), Strategy: placement.BlueDove{}, Policy: pol, Index: sc.IndexKind}
		r.Policies = append(r.Policies, pol.Name())
		r.Rates = append(r.Rates, SaturationRate(sc, n, v, wcfg, subs))
	}
	return r
}

// GainOverRandom returns the adaptive policy's multiple over the random
// policy.
func (r *Fig7Result) GainOverRandom() float64 {
	var adaptive, random float64
	for i, p := range r.Policies {
		switch p {
		case "adaptive":
			adaptive = r.Rates[i]
		case "random":
			random = r.Rates[i]
		}
	}
	if random == 0 {
		return 0
	}
	return adaptive / random
}

// Table renders the policy comparison.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 7: forwarding policies, %d matchers (%s scale)", r.Matchers, r.Scale),
		Note:   "paper: adaptive = 1.1x resptime = 1.2x subamount = 3.5x random",
		Header: []string{"policy", "saturation rate (msg/s)", "vs random"},
	}
	var random float64
	for i, p := range r.Policies {
		if p == "random" {
			random = r.Rates[i]
		}
	}
	for i, p := range r.Policies {
		rel := "-"
		if random > 0 {
			rel = fmt.Sprintf("%.1fx", r.Rates[i]/random)
		}
		t.AddRow(p, r.Rates[i], rel)
	}
	return t
}
