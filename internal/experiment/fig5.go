package experiment

import (
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Fig5Result reproduces Figure 5: message response time over time at one
// rate below and one above the saturation rate. Below saturation the
// response time stays flat; above it grows linearly as queues build.
type Fig5Result struct {
	// Scale names the run scale.
	Scale string
	// SatRate is the measured saturation rate (msgs/s) of the 20-matcher
	// BlueDove system.
	SatRate float64
	// BelowRate and AboveRate are the probed rates (0.9x and 1.3x SatRate).
	BelowRate, AboveRate float64
	// Below and Above are 1-second-averaged response times (seconds).
	Below, Above []metrics.Point
}

// Fig5 regenerates Figure 5 at the given scale.
func Fig5(sc Scale) *Fig5Result {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	v := BlueDoveVariant()
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	sat := SaturationRate(sc, n, v, wcfg, subs)

	run := func(rate float64) []metrics.Point {
		cl := sim.NewCluster(sc.VariantConfig(n, v))
		cl.SubscribeAll(subs)
		gen := workload.New(wcfg)
		const dur = 30 * time.Second
		cl.Drive(gen, workload.ConstantRate(rate), int64(dur))
		cl.RunUntil(int64(dur))
		// Drain so late arrivals get their (large) response times recorded;
		// the series is keyed by arrival time.
		for i := 0; i < 120 && cl.TotalBacklog() > 0; i++ {
			cl.RunFor(time.Second)
		}
		pts := cl.Stats().RespSeries.Downsample(int64(time.Second))
		// Trim to the driven window.
		out := pts[:0]
		for _, p := range pts {
			if p.T <= int64(dur) {
				out = append(out, p)
			}
		}
		return out
	}
	r := &Fig5Result{
		Scale:     sc.Name,
		SatRate:   sat,
		BelowRate: 0.9 * sat,
		AboveRate: 1.3 * sat,
	}
	r.Below = run(r.BelowRate)
	r.Above = run(r.AboveRate)
	return r
}

// Table renders the paper-style two-series comparison.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:  "Figure 5: response time below vs above saturation (" + r.Scale + " scale)",
		Note:   "paper: flat response below saturation (100k/s), linear growth above (150k/s, sat 114k/s)",
		Header: []string{"t(s)", "below sat (s)", "above sat (s)"},
	}
	above := make(map[int64]float64, len(r.Above))
	for _, p := range r.Above {
		above[p.T/1e9] = p.V
	}
	for _, p := range r.Below {
		sec := p.T / 1e9
		av, ok := above[sec]
		if !ok {
			continue
		}
		t.AddRow(sec, p.V, av)
	}
	return t
}
