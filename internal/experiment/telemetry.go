// Telemetry-overhead evaluation: the same batched forward-path workload as
// the batching experiment, run with the observability subsystem off and then
// on at increasing trace sample rates. The interesting numbers are the
// sampled-out cost (telemetry compiled in and enabled, sampler says no — the
// common production configuration) and the fully-traced cost.
package experiment

import (
	"fmt"
	"time"
)

// TelemetryMode is one sampled configuration of the overhead comparison.
type TelemetryMode struct {
	Name        string  `json:"name"`
	Telemetry   bool    `json:"telemetry"`    // subsystem enabled on every node
	SampleRate  float64 `json:"sample_rate"`  // trace sampling rate
	MsgsPerSec  float64 `json:"msgs_per_sec"` // best-of-trials delivered throughput
	RelativeOff float64 `json:"relative_to_off"`
}

// TelemetryOverheadResult compares batched-forward-path throughput across
// telemetry configurations on the real in-process cluster stack.
type TelemetryOverheadResult struct {
	Messages    int             `json:"messages"`
	Subscribers int             `json:"subscribers"`
	Trials      int             `json:"trials"`
	Modes       []TelemetryMode `json:"modes"`
}

// TelemetryOverhead measures delivered throughput of the batched forward path
// with telemetry off, on at sampling 0, on at 1% sampling, and on at full
// sampling. Each mode takes the best of opts.Trials runs.
func TelemetryOverhead(opts BatchingOpts) (*TelemetryOverheadResult, error) {
	if opts.Messages <= 0 {
		opts.Messages = 20000
	}
	if opts.Subscribers <= 0 {
		opts.Subscribers = 4
	}
	if opts.Linger <= 0 {
		opts.Linger = time.Millisecond
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	r := &TelemetryOverheadResult{
		Messages:    opts.Messages,
		Subscribers: opts.Subscribers,
		Trials:      opts.Trials,
	}
	modes := []TelemetryMode{
		{Name: "off", Telemetry: false, SampleRate: 0},
		{Name: "sampled-0", Telemetry: true, SampleRate: 0},
		{Name: "sampled-0.01", Telemetry: true, SampleRate: 0.01},
		{Name: "sampled-1.0", Telemetry: true, SampleRate: 1.0},
	}
	for i, mode := range modes {
		best := 0.0
		for tr := 0; tr < opts.Trials; tr++ {
			rate, _, _, err := batchingRun(opts, opts.Linger, mode.Telemetry, mode.SampleRate)
			if err != nil {
				return nil, fmt.Errorf("telemetry mode %s: %w", mode.Name, err)
			}
			if rate > best {
				best = rate
			}
		}
		modes[i].MsgsPerSec = best
		if base := modes[0].MsgsPerSec; base > 0 {
			modes[i].RelativeOff = best / base
		}
	}
	r.Modes = modes
	return r, nil
}

// Table renders the comparison.
func (r *TelemetryOverheadResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Tracing overhead on the batched forward path (%d msgs, %d subscribers)",
			r.Messages, r.Subscribers),
		Header: []string{"mode", "msgs/s", "vs off"},
	}
	for _, m := range r.Modes {
		t.AddRow(m.Name, m.MsgsPerSec, fmt.Sprintf("%.2fx", m.RelativeOff))
	}
	return t
}
