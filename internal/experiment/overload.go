// Overload-control evaluation on the real in-process cluster stack: one
// matcher is throttled to a small fraction of its service rate while a
// publication burst hammers tightly bounded stage queues, and the same
// workload runs twice — once with the overload layer disabled (busy NACKs
// ignored, no breaker: rejected forwards are simply lost) and once with it
// on (busy-NACK re-routing + circuit breaking). The comparison exposes what
// the layer buys: delivery rate back at ~100% and bounded tail latency,
// because NACKed publications take one extra hop to a sibling candidate
// instead of dying or waiting out a retransmit timer.
package experiment

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/forward"
)

// OverloadVariant is one run's outcome (layer off or on).
type OverloadVariant struct {
	Name         string
	Published    int64
	Delivered    int64   // unique publications delivered
	DeliveryRate float64 // Delivered / Published
	BusyNacks    int64   // forwards rejected by full matcher stages
	Rerouted     int64   // busy-NACKed forwards re-routed to a sibling
	BreakerTrips int64   // circuit-breaker closed→open transitions
	MatcherDrops int64   // forwards shed by stage backpressure
	P50Ms        float64 // median publish→deliver latency
	P99Ms        float64 // tail publish→deliver latency
	MaxMs        float64
}

// OverloadResult is the off/on comparison of one overload run.
type OverloadResult struct {
	Seed       int64
	Matchers   int
	QueueDepth int
	ThrottleMs int64
	Off        OverloadVariant
	On         OverloadVariant
}

// OverloadOpts parameterizes the run.
type OverloadOpts struct {
	Seed        int64         // rng seed for the load-blind policy (default 1)
	Burst       int           // publications per variant (default 2000)
	PubInterval time.Duration // publication pacing (default 200µs ≈ 5k msg/s)
	Matchers    int           // default 4
	QueueDepth  int           // per-dimension stage bound (default 4)
	Throttle    time.Duration // extra work per publication on the slow matcher (default 50ms)
}

func (o *OverloadOpts) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Burst <= 0 {
		o.Burst = 2000
	}
	if o.PubInterval <= 0 {
		o.PubInterval = 200 * time.Microsecond
	}
	if o.Matchers <= 0 {
		o.Matchers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4
	}
	if o.Throttle <= 0 {
		o.Throttle = 50 * time.Millisecond
	}
}

// Overload runs the off/on comparison.
func Overload(opts OverloadOpts) (*OverloadResult, error) {
	opts.defaults()
	off, err := overloadVariant(opts, false)
	if err != nil {
		return nil, fmt.Errorf("experiment: overload off: %w", err)
	}
	on, err := overloadVariant(opts, true)
	if err != nil {
		return nil, fmt.Errorf("experiment: overload on: %w", err)
	}
	return &OverloadResult{
		Seed:       opts.Seed,
		Matchers:   opts.Matchers,
		QueueDepth: opts.QueueDepth,
		ThrottleMs: opts.Throttle.Milliseconds(),
		Off:        *off,
		On:         *on,
	}, nil
}

// overloadVariant runs one burst against a cluster with the overload layer
// on or off. The cluster is non-persistent, so the retransmit timer cannot
// mask the difference: a rejected forward either re-routes or dies.
func overloadVariant(opts OverloadOpts, layerOn bool) (*OverloadVariant, error) {
	clOpts := cluster.Options{
		Space:          core.UniformSpace(4, 1000),
		Matchers:       opts.Matchers,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      2 * time.Second,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		PruneGrace:     300 * time.Millisecond,
		// Load-blind forwarding keeps the throttled hot spot in rotation, so
		// the overload layer alone decides the fate of rejected forwards.
		Policy:            forward.NewRandom(opts.Seed),
		MatcherQueueDepth: opts.QueueDepth,
		RerouteBackoff:    time.Millisecond,
	}
	if !layerOn {
		clOpts.RetryBudget = -1
		clOpts.BreakerThreshold = -1
	}
	c, err := cluster.Start(clOpts)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return nil, err
	}

	full := []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	var mu sync.Mutex
	publishedAt := make(map[string]time.Time, opts.Burst)
	latencies := make([]float64, 0, opts.Burst)
	delivered := make(map[string]bool, opts.Burst)
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		at := time.Now()
		mu.Lock()
		tok := string(m.Payload)
		if !delivered[tok] {
			delivered[tok] = true
			if t0, ok := publishedAt[tok]; ok {
				latencies = append(latencies, float64(at.Sub(t0).Microseconds())/1e3)
			}
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	if _, err := subCl.Subscribe(full); err != nil {
		return nil, err
	}
	time.Sleep(300 * time.Millisecond) // let the stores land

	victim := c.MatcherIDs()[0]
	c.ThrottleMatcher(victim, opts.Throttle)

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Burst; i++ {
		token := fmt.Sprintf("ov-%06d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		mu.Lock()
		publishedAt[token] = time.Now()
		mu.Unlock()
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			return nil, fmt.Errorf("publish %d rejected: %v", i, err)
		}
		time.Sleep(opts.PubInterval)
	}

	// Drain: wait until deliveries go quiet (or the timeout elapses — a
	// lossy variant never completes, which is the point of the comparison).
	deadline := time.Now().Add(15 * time.Second)
	last, lastChange := -1, time.Now()
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n != last {
			last, lastChange = n, time.Now()
		} else if n == opts.Burst || time.Since(lastChange) > time.Second {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	name := "off"
	if layerOn {
		name = "on"
	}
	v := &OverloadVariant{Name: name, Published: int64(opts.Burst)}
	mu.Lock()
	v.Delivered = int64(len(delivered))
	lats := append([]float64(nil), latencies...)
	mu.Unlock()
	v.DeliveryRate = float64(v.Delivered) / float64(v.Published)
	sort.Float64s(lats)
	if n := len(lats); n > 0 {
		v.P50Ms = lats[n/2]
		v.P99Ms = lats[n*99/100]
		v.MaxMs = lats[n-1]
	}
	for _, d := range c.Dispatchers() {
		v.Rerouted += d.Rerouted.Value()
		v.BreakerTrips += d.BreakerTrips()
	}
	for _, id := range c.MatcherIDs() {
		if m := c.Matcher(id); m != nil {
			v.BusyNacks += m.BusyNacks.Value()
			v.MatcherDrops += m.Dropped.Value()
		}
	}
	return v, nil
}

// Table renders the off/on comparison.
func (r *OverloadResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Overload control (seed %d, %d matchers, queue depth %d, one matcher +%dms/msg)",
			r.Seed, r.Matchers, r.QueueDepth, r.ThrottleMs),
		Header: []string{"metric", "layer off", "layer on"},
	}
	row := func(name string, f func(*OverloadVariant) any) {
		t.AddRow(name, f(&r.Off), f(&r.On))
	}
	row("published", func(v *OverloadVariant) any { return v.Published })
	row("delivered", func(v *OverloadVariant) any { return v.Delivered })
	row("delivery rate", func(v *OverloadVariant) any { return fmt.Sprintf("%.4f", v.DeliveryRate) })
	row("busy NACKs", func(v *OverloadVariant) any { return v.BusyNacks })
	row("rerouted", func(v *OverloadVariant) any { return v.Rerouted })
	row("breaker trips", func(v *OverloadVariant) any { return v.BreakerTrips })
	row("stage drops", func(v *OverloadVariant) any { return v.MatcherDrops })
	row("p50 (ms)", func(v *OverloadVariant) any { return fmt.Sprintf("%.2f", v.P50Ms) })
	row("p99 (ms)", func(v *OverloadVariant) any { return fmt.Sprintf("%.2f", v.P99Ms) })
	row("max (ms)", func(v *OverloadVariant) any { return fmt.Sprintf("%.2f", v.MaxMs) })
	return t
}
