// Chaos failover evaluation on the real in-process cluster stack: a steady
// publication load runs against a persistent cluster while a chaos scenario
// kills one matcher, and the delivery rate is sampled into fixed buckets to
// expose the throughput dip and recovery. The delivery-accounting invariant
// (every acked publication delivered at least once) is checked by the chaos
// auditor, so the headline numbers — dip depth, recovery time, zero loss —
// come from one run.
package experiment

import (
	"fmt"
	"sync/atomic"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
)

// ChaosBucket is one timeline sample.
type ChaosBucket struct {
	StartMs    int64   // bucket start, ms since workload start
	Deliveries int64   // deliveries landing in the bucket
	Rate       float64 // deliveries per second
}

// ChaosResult is the outcome of one chaos failover run.
type ChaosResult struct {
	Seed        int64
	Matchers    int
	Dispatchers int
	Published   int   // publications accepted (all acked)
	KillAtMs    int64 // kill offset from workload start
	BucketMs    int64

	Timeline []ChaosBucket

	PreKillRate float64 // mean delivery rate before the kill
	DipRate     float64 // lowest bucket rate at/after the kill
	RecoveryMs  int64   // kill → first bucket back at ≥80% of PreKillRate
	Retransmits int64   // dispatcher persistence retransmissions
	Duplicates  int     // duplicate deliveries (at-least-once redundancy)
	ZeroLoss    bool    // every acked publication delivered
	LossDetail  string  // auditor violations when ZeroLoss is false

	// Diagnostic counters for interpreting a non-zero-loss run.
	DroppedNoCandidate int64 // publications the dispatchers found no candidate for
	MatcherDrops       int64 // forwards shed by matcher stage backpressure
	InflightAtEnd      int   // unacked messages still retained at shutdown
}

// ChaosOpts parameterizes the run.
type ChaosOpts struct {
	Seed        int64         // chaos controller seed (default 1)
	Duration    time.Duration // publication phase length (default 3s)
	PubInterval time.Duration // publication pacing (default 1ms ≈ 1k msg/s)
	Matchers    int           // default 4
}

const chaosBucket = 100 * time.Millisecond

// Chaos runs the failover experiment: steady load, one matcher killed a
// third of the way in, timeline + invariants out.
func Chaos(opts ChaosOpts) (*ChaosResult, error) {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if opts.PubInterval <= 0 {
		opts.PubInterval = time.Millisecond
	}
	if opts.Matchers <= 0 {
		opts.Matchers = 4
	}
	ctrl := chaos.NewController(opts.Seed)
	defer ctrl.Close()
	c, err := cluster.Start(cluster.Options{
		Space:          core.UniformSpace(4, 1000),
		Matchers:       opts.Matchers,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		PruneGrace:     300 * time.Millisecond,
		Persistent:     true,
		RetryInterval:  100 * time.Millisecond,
		Chaos:          ctrl,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return nil, err
	}

	// One full-space direct subscriber; deliveries are both audited and
	// bucketed against the workload clock.
	full := []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	aud := chaos.NewAuditor()
	aud.Subscribed(1, full)
	// Buckets cover the run plus generous drain headroom.
	nBuckets := int(opts.Duration/chaosBucket) + 100
	buckets := make([]atomic.Int64, nBuckets)
	var start atomic.Value // time.Time, set when the workload begins
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
		if s, ok := start.Load().(time.Time); ok {
			if i := int(time.Since(s) / chaosBucket); i >= 0 && i < nBuckets {
				buckets[i].Add(1)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	if _, err := subCl.Subscribe(full); err != nil {
		return nil, err
	}
	time.Sleep(300 * time.Millisecond) // let the stores land

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		return nil, err
	}

	victim := c.MatcherIDs()[0]
	killAt := opts.Duration / 3
	var killedAt atomic.Value // time.Time
	run := chaos.NewScenario().
		At(killAt).Do(func() {
		killedAt.Store(time.Now())
		_ = c.CrashMatcher(victim)
	}).Run(ctrl)
	defer run.Stop()

	begin := time.Now()
	start.Store(begin)
	published := 0
	for i := 0; time.Since(begin) < opts.Duration; i++ {
		token := fmt.Sprintf("c-%06d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			return nil, fmt.Errorf("experiment: publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		published++
		time.Sleep(opts.PubInterval)
	}
	run.Wait()
	lossErr := aud.WaitComplete(20 * time.Second)

	r := &ChaosResult{
		Seed:        opts.Seed,
		Matchers:    opts.Matchers,
		Dispatchers: 2,
		Published:   published,
		BucketMs:    int64(chaosBucket / time.Millisecond),
		Duplicates:  aud.Duplicates(),
		ZeroLoss:    lossErr == nil,
	}
	if lossErr != nil {
		r.LossDetail = lossErr.Error()
	}
	if ka, ok := killedAt.Load().(time.Time); ok {
		r.KillAtMs = ka.Sub(begin).Milliseconds()
	}
	for _, d := range c.Dispatchers() {
		r.Retransmits += d.Retransmits.Value()
		r.DroppedNoCandidate += d.DroppedNoCandidate.Value()
		r.InflightAtEnd += d.InflightLen()
	}
	for _, id := range c.MatcherIDs() {
		if m := c.Matcher(id); m != nil {
			r.MatcherDrops += m.Dropped.Value()
		}
	}

	// Trim trailing empty buckets, keep one for the tail.
	lastBusy := 0
	for i := range buckets {
		if buckets[i].Load() > 0 {
			lastBusy = i
		}
	}
	perSec := float64(time.Second / chaosBucket)
	for i := 0; i <= lastBusy; i++ {
		n := buckets[i].Load()
		r.Timeline = append(r.Timeline, ChaosBucket{
			StartMs:    int64(i) * r.BucketMs,
			Deliveries: n,
			Rate:       float64(n) * perSec,
		})
	}

	// Pre-kill rate: buckets that ended before the kill.
	killBucket := int(r.KillAtMs / r.BucketMs)
	var sum float64
	var n int
	for i := 0; i < killBucket && i < len(r.Timeline); i++ {
		sum += r.Timeline[i].Rate
		n++
	}
	if n > 0 {
		r.PreKillRate = sum / float64(n)
	}
	// Dip: lowest rate at or after the kill bucket during the publish phase.
	pubBuckets := int(opts.Duration / chaosBucket)
	r.DipRate = r.PreKillRate
	dipBucket := killBucket
	for i := killBucket; i < pubBuckets && i < len(r.Timeline); i++ {
		if r.Timeline[i].Rate < r.DipRate {
			r.DipRate, dipBucket = r.Timeline[i].Rate, i
		}
	}
	// Recovery: first bucket after the dip back at ≥80% of the pre-kill rate.
	for i := dipBucket; i < len(r.Timeline); i++ {
		if r.Timeline[i].Rate >= 0.8*r.PreKillRate {
			r.RecoveryMs = r.Timeline[i].StartMs - r.KillAtMs
			break
		}
	}
	if r.RecoveryMs < 0 {
		r.RecoveryMs = 0
	}
	return r, nil
}

// Table renders the run summary.
func (r *ChaosResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Chaos failover (seed %d, %d matchers, kill at %dms, %d publications)",
			r.Seed, r.Matchers, r.KillAtMs, r.Published),
		Header: []string{"metric", "value"},
	}
	t.AddRow("pre-kill rate (msg/s)", r.PreKillRate)
	t.AddRow("dip rate (msg/s)", r.DipRate)
	t.AddRow("recovery to 80% (ms)", r.RecoveryMs)
	t.AddRow("retransmits", r.Retransmits)
	t.AddRow("duplicate deliveries", r.Duplicates)
	t.AddRow("zero acked loss", fmt.Sprintf("%v", r.ZeroLoss))
	return t
}
