package experiment

import (
	"fmt"

	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Fig6aResult reproduces Figure 6(a): saturation message rate versus the
// number of matchers, for BlueDove, P2P and full replication.
type Fig6aResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system-size sweep.
	Matchers []int
	// Rates maps variant label to the saturation rate per system size.
	Rates map[string][]float64
	// Labels preserves variant order.
	Labels []string
}

// Fig6a regenerates Figure 6(a) at the given scale.
func Fig6a(sc Scale) *Fig6aResult {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	variants := []Variant{BlueDoveVariant(), P2PVariant(), FullRepVariant(sc.Seed)}
	r := &Fig6aResult{Scale: sc.Name, Matchers: sc.MatcherCounts, Rates: map[string][]float64{}}
	for _, v := range variants {
		r.Labels = append(r.Labels, v.Label)
		for _, n := range sc.MatcherCounts {
			r.Rates[v.Label] = append(r.Rates[v.Label], SaturationRate(sc, n, v, wcfg, subs))
		}
	}
	return r
}

// Gain returns BlueDove's saturation-rate multiple over the named variant at
// sweep index i.
func (r *Fig6aResult) Gain(label string, i int) float64 {
	base := r.Rates[label][i]
	if base == 0 {
		return 0
	}
	return r.Rates["BlueDove"][i] / base
}

// Table renders the sweep with the paper's gain columns.
func (r *Fig6aResult) Table() *Table {
	t := &Table{
		Title:  "Figure 6(a): saturation rate vs matchers (" + r.Scale + " scale)",
		Note:   "paper: BlueDove gains 3.5x->4.2x over P2P and 14x->67x over Full-Rep from 5 to 20 matchers",
		Header: []string{"matchers", "BlueDove (msg/s)", "P2P (msg/s)", "Full-Rep (msg/s)", "gain vs P2P", "gain vs Full-Rep"},
	}
	for i, n := range r.Matchers {
		t.AddRow(n, r.Rates["BlueDove"][i], r.Rates["P2P"][i], r.Rates["Full-Rep"][i],
			fmt.Sprintf("%.1fx", r.Gain("P2P", i)), fmt.Sprintf("%.1fx", r.Gain("Full-Rep", i)))
	}
	return t
}

// Fig6bResult reproduces Figure 6(b): the maximum number of subscriptions
// each system sustains at a fixed message rate, versus the number of
// matchers.
type Fig6bResult struct {
	// Scale names the run scale.
	Scale string
	// Rate is the fixed message rate.
	Rate float64
	// Matchers is the system-size sweep.
	Matchers []int
	// MaxSubs maps variant label to the maximum sustainable subscription
	// count per system size.
	MaxSubs map[string][]int
	// Labels preserves variant order.
	Labels []string
}

// Fig6b regenerates Figure 6(b) at the given scale.
func Fig6b(sc Scale) *Fig6bResult {
	wcfg := sc.Workload()
	variants := []Variant{BlueDoveVariant(), P2PVariant(), FullRepVariant(sc.Seed)}
	r := &Fig6bResult{Scale: sc.Name, Rate: sc.Fig6bRate, Matchers: sc.MatcherCounts, MaxSubs: map[string][]int{}}
	for _, v := range variants {
		r.Labels = append(r.Labels, v.Label)
		for _, n := range sc.MatcherCounts {
			r.MaxSubs[v.Label] = append(r.MaxSubs[v.Label], maxSubscriptions(sc, n, v, wcfg))
		}
	}
	return r
}

// maxSubscriptions binary-searches the largest subscription count the
// variant sustains at the scale's Fig6bRate.
func maxSubscriptions(sc Scale, matchers int, v Variant, wcfg workload.Config) int {
	saturated := func(nsubs int) bool {
		subs := workload.New(wcfg).Subscriptions(nsubs)
		search := &sim.SaturationSearch{
			Build: func() *sim.Cluster {
				return sim.NewCluster(sc.VariantConfig(matchers, v))
			},
			Subscriptions: subs,
			Workload:      wcfg,
			Warmup:        sc.SatWarmup,
			Measure:       sc.SatMeasure,
			Tolerance:     sc.SatTolerance,
		}
		return search.Saturated(sc.Fig6bRate)
	}
	lo, hi := 0, 200
	if saturated(hi) {
		return 0 // cannot hold even the floor at this rate
	}
	lo = hi
	const expansionCap = 1 << 24
	for hi < expansionCap && !saturated(hi*2) {
		hi *= 2
		lo = hi
	}
	hi *= 2
	// Invariant: lo sustainable, hi saturated (or the expansion cap hit).
	for hi-lo > maxOf(50, lo/20) {
		mid := (lo + hi) / 2
		if saturated(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Gain returns BlueDove's max-subscription multiple over the named variant.
func (r *Fig6bResult) Gain(label string, i int) float64 {
	base := r.MaxSubs[label][i]
	if base == 0 {
		return 0
	}
	return float64(r.MaxSubs["BlueDove"][i]) / float64(base)
}

// Table renders the sweep with the paper's gain columns.
func (r *Fig6bResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 6(b): max subscriptions at %.0f msg/s vs matchers (%s scale)", r.Rate, r.Scale),
		Note:   "paper: at 20 matchers BlueDove holds 4x the subscriptions of P2P and 30x of Full-Rep",
		Header: []string{"matchers", "BlueDove", "P2P", "Full-Rep", "gain vs P2P", "gain vs Full-Rep"},
	}
	for i, n := range r.Matchers {
		t.AddRow(n, r.MaxSubs["BlueDove"][i], r.MaxSubs["P2P"][i], r.MaxSubs["Full-Rep"][i],
			fmt.Sprintf("%.1fx", r.Gain("P2P", i)), fmt.Sprintf("%.1fx", r.Gain("Full-Rep", i)))
	}
	return t
}
