package experiment

import (
	"fmt"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/partition"
	"bluedove/internal/placement"
	"bluedove/internal/workload"
)

// DimSelectResult evaluates the attribute-selection extension (paper
// Section VI future work: "it is likely that only a small number of
// attributes are commonly used in subscriptions; we want to study how to
// identify these attributes and adjust the partitioning accordingly").
// The workload constrains only half of the dimensions; partitioning on the
// unused ones stores every subscription on every matcher along those
// dimensions for no routing benefit.
type DimSelectResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size.
	Matchers int
	// UnusedDims is how many trailing dimensions the workload leaves
	// unconstrained.
	UnusedDims int
	// Selected is the dimension set chosen by placement.SelectDims.
	Selected []int
	// RateAll and RateSelected are the saturation rates.
	RateAll, RateSelected float64
	// CopiesAll and CopiesSelected count stored subscription copies
	// (memory/installation overhead).
	CopiesAll, CopiesSelected int
}

// DimSelect regenerates the attribute-selection comparison.
func DimSelect(sc Scale) *DimSelectResult {
	wcfg := sc.Workload()
	wcfg.UnusedDims = sc.Space.K() / 2
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]

	selected := placement.SelectDims(sc.Space, subs[:min(len(subs), 500)], sc.Space.K()-wcfg.UnusedDims)
	all := Variant{Label: "all-dims", Strategy: placement.BlueDove{},
		Policy: forward.Adaptive{}, Index: sc.IndexKind}
	sel := Variant{Label: "selected", Strategy: placement.BlueDove{DimSet: selected},
		Policy: forward.Adaptive{}, Index: sc.IndexKind}

	r := &DimSelectResult{
		Scale: sc.Name, Matchers: n, UnusedDims: wcfg.UnusedDims, Selected: selected,
	}
	r.RateAll = SaturationRate(sc, n, all, wcfg, subs)
	r.RateSelected = SaturationRate(sc, n, sel, wcfg, subs)
	r.CopiesAll = countCopies(sc, n, all, subs)
	r.CopiesSelected = countCopies(sc, n, sel, subs)
	return r
}

// countCopies totals (matcher, dimension) placements — each is one stored
// copy plus one installation message.
func countCopies(sc Scale, matchers int, v Variant, subs []*core.Subscription) int {
	ids := make([]core.NodeID, matchers)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	tab, err := partition.NewUniform(sc.Space, ids)
	if err != nil {
		return 0
	}
	total := 0
	for _, s := range subs {
		total += len(v.Strategy.Assign(tab, s))
	}
	return total
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Table renders the comparison.
func (r *DimSelectResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension (paper §VI): attribute selection with %d unused dims, %d matchers (%s scale)",
			r.UnusedDims, r.Matchers, r.Scale),
		Note:   fmt.Sprintf("SelectDims chose %v; partitioning on unconstrained attributes replicates every subscription N ways for nothing", r.Selected),
		Header: []string{"partitioning", "saturation rate (msg/s)", "stored copies"},
	}
	t.AddRow("all dimensions", r.RateAll, r.CopiesAll)
	t.AddRow(fmt.Sprintf("selected %v", r.Selected), r.RateSelected, r.CopiesSelected)
	return t
}
