// End-to-end evaluation of publication batching (dispatcher → wire →
// transport → matcher → delivery) on the real in-process cluster stack —
// unlike the figure experiments this does not use the discrete-event
// simulator, because the quantity under test is the per-frame overhead of
// the actual hot path.
package experiment

import (
	"fmt"
	"sync/atomic"
	"time"

	"bluedove/internal/client"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
)

// BatchingResult compares cluster throughput with forward-path batching off
// and on (same topology, workload and subscriptions).
type BatchingResult struct {
	Messages    int // publications per run
	Subscribers int // direct subscribers, each matching every message
	Matchers    int
	Dispatchers int

	UnbatchedMsgsPerSec float64
	BatchedMsgsPerSec   float64
	Speedup             float64 // batched / unbatched

	// BatchedFrames and Forwarded are from the batched run; their ratio is
	// the achieved messages-per-frame amortization on the forward hop.
	BatchedFrames int64
	Forwarded     int64
	Amortization  float64
}

// BatchingOpts parameterizes the batching comparison.
type BatchingOpts struct {
	Messages    int           // default 20000
	Subscribers int           // default 4
	Linger      time.Duration // batched-run linger; default 1ms
	Trials      int           // runs per mode, best taken (default 3)
}

// Batching runs the comparison: once with ForwardLinger=0 (message-per-frame)
// and once with the linger enabled, measuring delivered messages per second.
func Batching(opts BatchingOpts) (*BatchingResult, error) {
	if opts.Messages <= 0 {
		opts.Messages = 20000
	}
	if opts.Subscribers <= 0 {
		opts.Subscribers = 4
	}
	if opts.Linger <= 0 {
		opts.Linger = time.Millisecond
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	r := &BatchingResult{
		Messages:    opts.Messages,
		Subscribers: opts.Subscribers,
		Matchers:    4,
		Dispatchers: 2,
	}
	// Best-of-N per mode: in-process scheduling noise dominates single runs.
	var un, ba float64
	var frames, forwarded int64
	for tr := 0; tr < opts.Trials; tr++ {
		rate, _, _, err := batchingRun(opts, 0, false, 0)
		if err != nil {
			return nil, fmt.Errorf("unbatched run: %w", err)
		}
		if rate > un {
			un = rate
		}
	}
	for tr := 0; tr < opts.Trials; tr++ {
		rate, fr, fw, err := batchingRun(opts, opts.Linger, false, 0)
		if err != nil {
			return nil, fmt.Errorf("batched run: %w", err)
		}
		if rate > ba {
			ba, frames, forwarded = rate, fr, fw
		}
	}
	r.UnbatchedMsgsPerSec, r.BatchedMsgsPerSec = un, ba
	if un > 0 {
		r.Speedup = ba / un
	}
	r.BatchedFrames, r.Forwarded = frames, forwarded
	if frames > 0 {
		r.Amortization = float64(forwarded) / float64(frames)
	}
	return r, nil
}

// batchingRun boots one cluster, drives the workload, and returns delivered
// messages per second plus the forward-path frame counters. With telemetry
// set the observability subsystem runs on every node at the given trace
// sample rate (the telemetry-overhead experiment's knob).
func batchingRun(opts BatchingOpts, linger time.Duration, telemetry bool, sampleRate float64) (rate float64, frames, forwarded int64, err error) {
	c, err := cluster.Start(cluster.Options{
		Space:           core.UniformSpace(4, 1000),
		Matchers:        4,
		Dispatchers:     2,
		GossipInterval:  50 * time.Millisecond,
		FailAfter:       5 * time.Second,
		ReportInterval:  50 * time.Millisecond,
		ForwardLinger:   linger,
		Telemetry:       telemetry,
		TraceSampleRate: sampleRate,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return 0, 0, 0, err
	}

	// Direct subscribers, each covering the whole space: every publication
	// is delivered once per subscriber.
	var delivered atomic.Int64
	full := []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	for i := 0; i < opts.Subscribers; i++ {
		cl, err := c.NewClient(i%2, func(m *core.Message, ids []core.SubscriptionID) {
			delivered.Add(1)
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := cl.Subscribe(full); err != nil {
			return 0, 0, 0, err
		}
	}
	// Wait until the stores landed: probe until a publication round-trips to
	// every subscriber.
	probeCl, err := c.NewClient(0, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	probes := int64(0)
	active := false
	for deadline := time.Now().Add(5 * time.Second); !active; {
		before := delivered.Load()
		if err := probeCl.Publish([]float64{500, 500, 500, 500}, nil); err == nil {
			probes++
		}
		// Give this probe a moment to fan out to every subscriber.
		for w := 0; w < 10 && delivered.Load()-before < int64(opts.Subscribers); w++ {
			time.Sleep(20 * time.Millisecond)
		}
		active = delivered.Load()-before >= int64(opts.Subscribers)
		if !active && time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("experiment: subscriptions never became active")
		}
	}
	base := delivered.Load()

	// Drive the workload from 4 publisher goroutines across both
	// dispatchers, retrying when backpressure rejects a publish.
	const pubWorkers = 4
	perWorker := opts.Messages / pubWorkers
	total := perWorker * pubWorkers
	want := base + int64(total)*int64(opts.Subscribers)
	pubClients := make([]*client.Client, pubWorkers)
	for p := range pubClients {
		cl, err := c.NewClient(p%2, nil)
		if err != nil {
			return 0, 0, 0, err
		}
		pubClients[p] = cl
	}
	start := time.Now()
	done := make(chan error, pubWorkers)
	for p := 0; p < pubWorkers; p++ {
		go func(p int) {
			cl := pubClients[p]
			for i := 0; i < perWorker; i++ {
				attrs := []float64{float64(i % 1000), 500, 500, 500}
				for cl.Publish(attrs, nil) != nil {
					time.Sleep(time.Millisecond) // mesh backpressure
				}
			}
			done <- nil
		}(p)
	}
	for p := 0; p < pubWorkers; p++ {
		<-done
	}
	// Drain until deliveries stop advancing: the publish side is closed-loop
	// (Publish errors retry) but the forward hop sheds load under overflow
	// without persistence, so an exact-count wait could hang. Throughput is
	// deliveries observed over the time of the last delivery.
	last, lastAt := delivered.Load(), time.Now()
	for time.Since(lastAt) < 500*time.Millisecond && last < want {
		time.Sleep(2 * time.Millisecond)
		if v := delivered.Load(); v != last {
			last, lastAt = v, time.Now()
		}
	}
	elapsed := lastAt.Sub(start)
	got := float64(last-base) / float64(opts.Subscribers)
	for _, d := range c.Dispatchers() {
		frames += d.ForwardBatches.Value()
		forwarded += d.Forwarded.Value()
	}
	forwarded -= probes // exclude warm-up traffic from the amortization ratio
	return got / elapsed.Seconds(), frames, forwarded, nil
}

// Table renders the comparison.
func (r *BatchingResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Publication batching (in-proc cluster, %d msgs, %d subscribers)",
			r.Messages, r.Subscribers),
		Header: []string{"mode", "msgs/s", "speedup", "msgs/frame"},
	}
	t.AddRow("unbatched", r.UnbatchedMsgsPerSec, "1.00x", 1.0)
	t.AddRow("batched", r.BatchedMsgsPerSec, fmt.Sprintf("%.2fx", r.Speedup), r.Amortization)
	return t
}
