// Disk-fault certification on the real in-process full stack: journaled
// dispatchers and matchers behind an edge tier, with the elasticity
// controller and the federation border tier running, while both network
// faults (drops, duplicates, delays on the dispatcher↔matcher fabric) and
// disk faults (fsync failure, ENOSPC) are injected concurrently.
//
// Two phases certify the two durability policies:
//
//   - FailStop: one matcher's disk starts failing every fsync mid-burst.
//     The store fails, the cluster crashes the node, persistence reroutes
//     its unacked forwards — every acked publication must still reach both
//     the direct subscriber and the edge session (zero acked loss).
//   - DegradeToMemory: one dispatcher's disk runs out of space mid-burst.
//     The node keeps serving — every publication is accepted and delivered
//     — while the weakened guarantee is reported exactly: store health
//     flips to degraded and every non-durable append is counted, so the
//     durable prefix plus the reported drops covers everything accepted.
package experiment

import (
	"fmt"
	"os"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/store"
)

// DiskFaultFailStop is the FailStop phase outcome.
type DiskFaultFailStop struct {
	Published     int64
	Expected      int  // auditor-expected deliveries across both subscribers
	ZeroAckedLoss bool // every acked publication delivered everywhere
	LossDetail    string
	Duplicates    int64   // redeliveries absorbed by the auditor
	EdgeDelivered int64   // deliveries that crossed the edge tier
	CrashMs       float64 // fsync fault injected → victim left the live set
	DiskFaults    int     // disk ops faulted on the victim (trace length)
	ElasticMoves  int64   // controller scale-ups + replaces observed
}

// DiskFaultDegrade is the DegradeToMemory phase outcome.
type DiskFaultDegrade struct {
	Published       int64
	ZeroAckedLoss   bool
	LossDetail      string
	Duplicates      int64
	HealthDegraded  bool  // dispatcher store ended in Degraded
	Durable         int64 // appends that reached the disk
	Dropped         int64 // appends accepted non-durably (reported, not silent)
	AccountingExact bool  // Durable + Dropped >= accepted publications
}

// DiskFaultResult is the two-phase certification outcome.
type DiskFaultResult struct {
	Seed        int64
	Matchers    int
	Dispatchers int
	Burst       int
	FailStop    DiskFaultFailStop
	Degrade     DiskFaultDegrade
}

// DiskFaultOpts parameterizes the certification run.
type DiskFaultOpts struct {
	Seed     int64 // chaos seed: network and disk faults both derive from it (default 1)
	Burst    int   // publications per phase (default 300)
	Matchers int   // default 4
}

func (o *DiskFaultOpts) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Burst <= 0 {
		o.Burst = 300
	}
	if o.Matchers <= 0 {
		o.Matchers = 4
	}
}

// diskFaultOptions builds the full-stack cluster the certification runs on:
// persistent journaled nodes, an edge server, the embedded elasticity
// controller, and the federation border tier (single cluster — no peers —
// so the border summary loop runs without a second cluster).
func diskFaultOptions(opts DiskFaultOpts, ctrl *chaos.Controller, dir string, policy store.FailPolicy) cluster.Options {
	return cluster.Options{
		Space:          core.UniformSpace(4, 1000),
		Matchers:       opts.Matchers,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		PruneGrace:     300 * time.Millisecond,
		RetryInterval:  100 * time.Millisecond,

		Chaos:      ctrl,
		Persistent: true,
		DataDir:    dir,
		Fsync:      store.FsyncAlways,
		FailPolicy: policy,

		Edges:           1,
		Elastic:         true,
		ElasticInterval: 100 * time.Millisecond,
		// Hold the floor at the starting size so the controller reacts to
		// failure (replace) and load (up), never shrinks mid-certification.
		ElasticConfig:      elastic.Config{MinMatchers: opts.Matchers},
		Federation:         true,
		FedSummaryInterval: 100 * time.Millisecond,
	}
}

// diskFaultSpace is the all-matching subscription every auditor holds.
func diskFaultSpace() []core.Range {
	return []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000},
		{Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
}

// diskFaultFabricChaos arms the dispatcher↔matcher fabric with lossy,
// duplicating, delaying links in both directions.
func diskFaultFabricChaos(c *cluster.Cluster, ctrl *chaos.Controller) {
	faults := chaos.LinkFaults{Drop: 0.1, Duplicate: 0.05,
		DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, faults)
			ctrl.SetFaults(maddr, daddr, faults)
		}
	}
}

// DiskFault runs the two-phase disk-fault certification.
func DiskFault(opts DiskFaultOpts) (*DiskFaultResult, error) {
	opts.defaults()
	r := &DiskFaultResult{Seed: opts.Seed, Matchers: opts.Matchers, Dispatchers: 2, Burst: opts.Burst}
	fs, err := diskFaultFailStop(opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: diskfault failstop: %w", err)
	}
	r.FailStop = *fs
	dg, err := diskFaultDegrade(opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: diskfault degrade: %w", err)
	}
	r.Degrade = *dg
	return r, nil
}

func diskFaultFailStop(opts DiskFaultOpts) (*DiskFaultFailStop, error) {
	ctrl := chaos.NewController(opts.Seed)
	defer ctrl.Close()
	dir, err := os.MkdirTemp("", "bluedove-diskfault-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	c, err := cluster.Start(diskFaultOptions(opts, ctrl, dir, store.FailStop))
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return nil, err
	}

	// Two audited subscribers: one direct client, one multiplexed edge
	// session — acked loss anywhere fails the certification.
	aud := chaos.NewAuditor()
	aud.Subscribed(1, diskFaultSpace())
	aud.Subscribed(2, diskFaultSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		return nil, err
	}
	if _, err := subCl.Subscribe(diskFaultSpace()); err != nil {
		return nil, err
	}
	sess, err := c.NewEdgeSession(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(2, m)
	})
	if err != nil {
		return nil, err
	}
	if _, err := sess.Subscribe(diskFaultSpace()); err != nil {
		return nil, err
	}
	time.Sleep(300 * time.Millisecond) // let the stores land everywhere

	diskFaultFabricChaos(c, ctrl)

	victim := c.MatcherIDs()[0]
	victimLabel := fmt.Sprintf("matcher-%d", victim)
	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		return nil, err
	}

	var faultAt time.Time
	for i := 0; i < opts.Burst; i++ {
		if i == opts.Burst/2 {
			// The victim's disk starts failing every fsync; the triggering
			// subscription install journals on every matcher, poisons the
			// victim's segment, and FailStop crashes the node mid-burst.
			faultAt = time.Now()
			ctrl.SetDiskFaults(victimLabel, chaos.DiskFaults{SyncErr: 1.0})
			trig, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {})
			if err != nil {
				return nil, err
			}
			_, _ = trig.Subscribe(diskFaultSpace()) // may race the crash; best-effort
		}
		token := fmt.Sprintf("dfk-%05d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			return nil, fmt.Errorf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}

	// FailStop actuation: wait for the victim to leave the live set.
	crashDeadline := time.Now().Add(10 * time.Second)
	var crashedAt time.Time
	for time.Now().Before(crashDeadline) {
		live := false
		for _, id := range c.LiveMatcherIDs() {
			if id == victim {
				live = true
				break
			}
		}
		if !live {
			crashedAt = time.Now()
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if crashedAt.IsZero() {
		return nil, fmt.Errorf("victim matcher %v never left the live set", victim)
	}
	if h := c.Matcher(victim).StoreHealth(); h != store.Failed {
		return nil, fmt.Errorf("victim store health = %v, want failed", h)
	}

	out := &DiskFaultFailStop{
		Published:     int64(opts.Burst),
		ZeroAckedLoss: true,
		CrashMs:       float64(crashedAt.Sub(faultAt).Microseconds()) / 1e3,
	}
	if err := aud.WaitComplete(30 * time.Second); err != nil {
		out.ZeroAckedLoss = false
		out.LossDetail = err.Error()
	}
	out.Expected = aud.Expected()
	out.Duplicates = int64(aud.Duplicates())
	out.EdgeDelivered = sess.Delivered()
	out.DiskFaults = len(ctrl.DiskTrace(victimLabel))
	if out.DiskFaults == 0 {
		return nil, fmt.Errorf("no disk faults were injected — certification lost its teeth")
	}
	if ec := c.ElasticController(); ec != nil {
		out.ElasticMoves = ec.ScaleUps.Value() + ec.Replaces.Value()
	}
	return out, nil
}

func diskFaultDegrade(opts DiskFaultOpts) (*DiskFaultDegrade, error) {
	ctrl := chaos.NewController(opts.Seed)
	defer ctrl.Close()
	dir, err := os.MkdirTemp("", "bluedove-diskfault-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	c, err := cluster.Start(diskFaultOptions(opts, ctrl, dir, store.DegradeToMemory))
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return nil, err
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, diskFaultSpace())
	subCl, err := c.NewClient(1, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		return nil, err
	}
	if _, err := subCl.Subscribe(diskFaultSpace()); err != nil {
		return nil, err
	}
	time.Sleep(300 * time.Millisecond)

	diskFaultFabricChaos(c, ctrl)

	// Dispatcher 0 journals every accepted publication (persistent mode);
	// its disk admits ~4KiB more, then every write fails with ENOSPC.
	d0 := c.Dispatchers()[0]
	ctrl.SetDiskFaults(fmt.Sprintf("dispatcher-%d", d0.ID()), chaos.DiskFaults{ENOSPCAfter: 4096})

	pubCl, err := c.NewClient(0, nil) // publishes through dispatcher 0
	if err != nil {
		return nil, err
	}
	for i := 0; i < opts.Burst; i++ {
		token := fmt.Sprintf("deg-%05d", i)
		attrs := []float64{float64((i * 41) % 1000), float64((i * 67) % 1000),
			float64((i * 89) % 1000), float64((i * 103) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			return nil, fmt.Errorf("publish %d rejected — DegradeToMemory must keep serving: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}

	out := &DiskFaultDegrade{Published: int64(opts.Burst), ZeroAckedLoss: true}
	if err := aud.WaitComplete(30 * time.Second); err != nil {
		out.ZeroAckedLoss = false
		out.LossDetail = err.Error()
	}
	out.Duplicates = int64(aud.Duplicates())

	jnl := d0.Journal()
	if jnl == nil {
		return nil, fmt.Errorf("dispatcher 0 has no journal")
	}
	out.HealthDegraded = jnl.Health() == store.Degraded
	out.Durable = jnl.Appends.Value()
	out.Dropped = jnl.DroppedAppends.Value()
	out.AccountingExact = out.Dropped > 0 && out.Durable+out.Dropped >= int64(opts.Burst)
	return out, nil
}

// Table renders the certification outcome.
func (r *DiskFaultResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Disk-fault certification (seed %d, %d matchers, %d dispatchers, %d pubs/phase, disk+network chaos)",
			r.Seed, r.Matchers, r.Dispatchers, r.Burst),
		Header: []string{"metric", "failstop", "degrade-to-memory"},
	}
	b := func(v bool) string {
		if v {
			return "yes"
		}
		return "NO"
	}
	t.AddRow("published", r.FailStop.Published, r.Degrade.Published)
	t.AddRow("zero acked loss", b(r.FailStop.ZeroAckedLoss), b(r.Degrade.ZeroAckedLoss))
	t.AddRow("expected deliveries", r.FailStop.Expected, r.Degrade.Published)
	t.AddRow("duplicates absorbed", r.FailStop.Duplicates, r.Degrade.Duplicates)
	t.AddRow("edge deliveries", r.FailStop.EdgeDelivered, "-")
	t.AddRow("fault→crash (ms)", fmt.Sprintf("%.1f", r.FailStop.CrashMs), "-")
	t.AddRow("disk ops faulted", r.FailStop.DiskFaults, "-")
	t.AddRow("elastic moves", r.FailStop.ElasticMoves, "-")
	t.AddRow("store degraded", "-", b(r.Degrade.HealthDegraded))
	t.AddRow("durable appends", "-", r.Degrade.Durable)
	t.AddRow("reported drops", "-", r.Degrade.Dropped)
	t.AddRow("accounting exact", "-", b(r.Degrade.AccountingExact))
	return t
}
