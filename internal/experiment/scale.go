// Package experiment regenerates every table and figure of the paper's
// evaluation (Section IV) on the discrete-event simulator. Each FigNN
// function reproduces one figure and returns a typed result with the same
// rows/series the paper reports.
//
// Experiments run at a configurable Scale. The default ScaleSmall shrinks
// the workload (2,000 instead of 40,000 subscriptions) and slows the modeled
// matching cost 10x so a full suite finishes in minutes on one core; the
// paper's matcher counts (5..20), update intervals, skew parameters and all
// ratios of interest are preserved. ScalePaper uses the paper's parameters
// (40,000 subscriptions, calibrated per-scan cost) and is proportionally
// slower to simulate.
package experiment

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/partition"
	"bluedove/internal/placement"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Scale bundles the size parameters shared by all experiments.
type Scale struct {
	// Name labels the scale in reports ("small", "paper").
	Name string
	// Space is the attribute space (4 dimensions of extent 1000).
	Space *core.Space
	// Subs is the default subscription count (paper: 40,000).
	Subs int
	// MatcherCounts is the system-size sweep (paper: 5, 10, 15, 20).
	MatcherCounts []int
	// BaseMatchCost and PerScanCost define the matching cost model.
	BaseMatchCost time.Duration
	PerScanCost   time.Duration
	// Fig6bRate is the fixed message rate of the max-subscriptions sweep.
	Fig6bRate float64
	// SatMeasure and SatWarmup bound each saturation probe.
	SatMeasure time.Duration
	SatWarmup  time.Duration
	// SatTolerance is the relative precision of saturation rates.
	SatTolerance float64
	// IndexKind selects the matcher index (and therefore the matching cost
	// model: scanned subscriptions per stab query).
	IndexKind index.Kind
	// Seed drives the workload and simulator.
	Seed int64
}

// ScaleSmall returns the fast default scale (see package comment).
func ScaleSmall() Scale {
	return Scale{
		Name:          "small",
		Space:         core.UniformSpace(4, 1000),
		Subs:          2000,
		MatcherCounts: []int{5, 10, 15, 20},
		BaseMatchCost: 100 * time.Microsecond,
		PerScanCost:   10 * time.Microsecond,
		Fig6bRate:     2500,
		SatMeasure:    6 * time.Second,
		SatWarmup:     8 * time.Second,
		SatTolerance:  0.08,
		IndexKind:     index.KindBucket,
		Seed:          1,
	}
}

// ScalePaper returns the paper's parameters: 40,000 subscriptions and a
// per-scan cost calibrated so a full 40k scan costs ~12ms — the paper's
// measured full-replication matching time. Simulating it is roughly 100x
// slower than ScaleSmall.
func ScalePaper() Scale {
	return Scale{
		Name:          "paper",
		Space:         core.UniformSpace(4, 1000),
		Subs:          40000,
		MatcherCounts: []int{5, 10, 15, 20},
		BaseMatchCost: 20 * time.Microsecond,
		PerScanCost:   300 * time.Nanosecond,
		Fig6bRate:     100000,
		SatMeasure:    6 * time.Second,
		SatWarmup:     8 * time.Second,
		SatTolerance:  0.08,
		IndexKind:     index.KindBucket,
		Seed:          1,
	}
}

// ScaleTiny returns a minimal scale for unit tests of the experiment
// drivers themselves.
func ScaleTiny() Scale {
	s := ScaleSmall()
	s.Name = "tiny"
	s.Subs = 400
	s.MatcherCounts = []int{4, 8}
	// Heavily inflated matching costs keep saturation rates (and therefore
	// simulated event counts) small; the drivers under test are
	// cost-scale invariant.
	s.BaseMatchCost = 2 * time.Millisecond
	s.PerScanCost = 100 * time.Microsecond
	s.SatMeasure = 3 * time.Second
	s.SatWarmup = 4 * time.Second
	s.SatTolerance = 0.15
	s.Fig6bRate = 120
	return s
}

// Workload returns the scale's default workload configuration (σ=250-of-1000
// cropped normal subscriptions, uniform messages).
func (s Scale) Workload() workload.Config {
	w := workload.Default(s.Space)
	w.Seed = s.Seed
	return w
}

// SimConfig returns a simulator configuration for the given system variant.
// Matchers index each per-dimension subscription set (paper Section III-A:
// "a matcher stores subscriptions in each of the k subsets separately and
// builds a separate index for each subset"), so matching time is
// proportional to the subscriptions the index scans for the stab query.
func (s Scale) SimConfig(matchers int, strat placement.Strategy, pol forward.Policy) sim.Config {
	return sim.Config{
		Space:         s.Space,
		Matchers:      matchers,
		Strategy:      strat,
		Policy:        pol,
		IndexKind:     s.IndexKind,
		BaseMatchCost: s.BaseMatchCost,
		PerScanCost:   s.PerScanCost,
		Seed:          s.Seed,
	}
}

// VariantConfig returns a simulator configuration for one system variant,
// using the variant's own index kind (cost model).
func (s Scale) VariantConfig(matchers int, v Variant) sim.Config {
	cfg := s.SimConfig(matchers, v.Strategy, v.Policy)
	cfg.IndexKind = v.Index
	return cfg
}

// EstimateCapacity predicts a system's saturation rate from the static
// subscription placement, giving the saturation search a tight initial
// bracket (it still verifies dynamically). The estimate assumes the policy
// routes each message to its cheapest candidate and the load spreads in
// proportion; for single-candidate systems (P2P) the hottest matcher-stage
// bounds throughput.
func EstimateCapacity(sc Scale, matchers int, v Variant,
	subs []*core.Subscription, probes []*core.Message) float64 {
	strat := v.Strategy
	ids := make([]core.NodeID, matchers)
	for i := range ids {
		ids[i] = core.NodeID(i + 1)
	}
	tab, err := partition.NewUniform(sc.Space, ids)
	if err != nil {
		return 0
	}
	// Build the actual per-(node, dim) indexes so service estimates use the
	// real stab cost of the configured index kind.
	idxs := make(map[partition.Assignment]index.Index)
	for _, s := range subs {
		for _, a := range strat.Assign(tab, s) {
			ix, ok := idxs[a]
			if !ok {
				ix = index.New(v.Index, sc.Space, a.Dim)
				idxs[a] = ix
			}
			ix.Add(s)
		}
	}
	service := func(c partition.Candidate, m *core.Message) float64 {
		scanned := 0
		if ix, ok := idxs[partition.Assignment{Node: c.Node, Dim: c.Dim}]; ok {
			_, scanned = ix.Stab(m.Attrs[c.Dim], nil)
		}
		return float64(sc.BaseMatchCost) + float64(sc.PerScanCost)*float64(scanned)
	}
	// perPair[(j,dim)] is the expected service time (ns) the stage spends
	// per published message; a stage's capacity is its worker share.
	perPair := make(map[partition.Assignment]float64)
	k := sc.Space.K()
	for _, m := range probes {
		cands := strat.Candidates(tab, m)
		best := service(cands[0], m)
		for _, c := range cands[1:] {
			if s := service(c, m); s < best {
				best = s
			}
		}
		// Load spreads across near-tied cheapest candidates (relevant for
		// full replication, where every candidate costs the same).
		var tied []partition.Candidate
		for _, c := range cands {
			if service(c, m) <= best*1.01 {
				tied = append(tied, c)
			}
		}
		for _, c := range tied {
			perPair[partition.Assignment{Node: c.Node, Dim: c.Dim}] +=
				service(c, m) / float64(len(tied)) / float64(len(probes))
		}
	}
	// Workers per stage: the k-worker pool divided among the node's active
	// dimension sets.
	activeDims := make(map[core.NodeID]map[int]bool)
	for a := range idxs {
		if activeDims[a.Node] == nil {
			activeDims[a.Node] = make(map[int]bool)
		}
		activeDims[a.Node][a.Dim] = true
	}
	// The first stage to saturate caps the rate: stage (j,dim) saturates
	// when rate × perPair reaches its workers' seconds of service per second.
	worst := 0.0
	for a, load := range perPair {
		active := len(activeDims[a.Node])
		if active == 0 {
			active = k
		}
		w := k / active
		if w < 1 {
			w = 1
		}
		if l := load / float64(w); l > worst {
			worst = l
		}
	}
	if worst <= 0 {
		return 0
	}
	return float64(time.Second) / worst
}
