package experiment

import (
	"fmt"
	"strings"

	"bluedove/internal/metrics"
)

// Table is a simple aligned-text table for experiment reports.
type Table struct {
	// Title heads the rendered table.
	Title string
	// Note is an optional paper-comparison remark rendered under the title.
	Note string
	// Header holds the column names.
	Header []string
	// Rows holds the cell text.
	Rows [][]string
}

// AddRow appends one row of cells (fmt.Sprint applied to each value).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// SeriesTable renders a downsampled time series as "t(s)  value" rows.
func SeriesTable(title string, s *metrics.Series, interval int64) *Table {
	t := &Table{Title: title, Header: []string{"t(s)", s.Name()}}
	for _, p := range s.Downsample(interval) {
		t.AddRow(fmt.Sprintf("%.1f", float64(p.T)/1e9), p.V)
	}
	return t
}
