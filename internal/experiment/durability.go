// End-to-end evaluation of the durability subsystem on the real in-process
// cluster stack: what does journaling every dispatcher and matcher mutation
// cost at each fsync policy, and how fast does a node recover as its journal
// grows? Like the batching experiment this runs the real hot path, not the
// discrete-event simulator — the quantity under test is filesystem work on
// the forward path.
package experiment

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/store"
)

// DurabilityConfig is one measured cluster configuration.
type DurabilityConfig struct {
	Name       string  // "none" (no journal), "never", "interval", "always"
	MsgsPerSec float64 // delivered publications per second
	MeanMs     float64 // mean dispatcher-ingest→delivery latency
	P99Ms      float64 // 99th percentile of the same
	Slowdown   float64 // baseline throughput / this throughput
}

// RecoveryPoint is one point of the recovery-time-vs-journal-size curve.
type RecoveryPoint struct {
	Records int     // journal records replayed
	Bytes   int64   // journal bytes read
	Seconds float64 // wall time for store.Open to finish recovery
}

// DurabilityResult is the full report.
type DurabilityResult struct {
	Messages    int
	Subscribers int
	Configs     []DurabilityConfig
	Recovery    []RecoveryPoint
}

// DurabilityOpts parameterizes the experiment.
type DurabilityOpts struct {
	Messages    int // publications per run (default 5000)
	Subscribers int // direct subscribers, each matching every message (default 2)
	Trials      int // runs per config, best taken (default 3)
}

// Durability measures cluster throughput and delivery latency with no
// journal, then with journaling at each fsync policy, and the recovery-time
// curve of a growing journal.
func Durability(opts DurabilityOpts) (*DurabilityResult, error) {
	if opts.Messages <= 0 {
		opts.Messages = 5000
	}
	if opts.Subscribers <= 0 {
		opts.Subscribers = 2
	}
	if opts.Trials <= 0 {
		opts.Trials = 3
	}
	r := &DurabilityResult{Messages: opts.Messages, Subscribers: opts.Subscribers}

	configs := []struct {
		name    string
		durable bool
		fsync   store.Fsync
	}{
		{"none", false, 0},
		{"never", true, store.FsyncNever},
		{"interval", true, store.FsyncInterval},
		{"always", true, store.FsyncAlways},
	}
	for _, cfg := range configs {
		best := DurabilityConfig{Name: cfg.name}
		for tr := 0; tr < opts.Trials; tr++ {
			rate, mean, p99, err := durabilityRun(opts, cfg.durable, cfg.fsync)
			if err != nil {
				return nil, fmt.Errorf("%s run: %w", cfg.name, err)
			}
			if rate > best.MsgsPerSec {
				best.MsgsPerSec, best.MeanMs, best.P99Ms = rate, mean, p99
			}
		}
		r.Configs = append(r.Configs, best)
	}
	base := r.Configs[0].MsgsPerSec
	for i := range r.Configs {
		if r.Configs[i].MsgsPerSec > 0 {
			r.Configs[i].Slowdown = base / r.Configs[i].MsgsPerSec
		}
	}

	for _, n := range []int{1000, 10000, 50000} {
		pt, err := recoveryPoint(n)
		if err != nil {
			return nil, fmt.Errorf("recovery curve at %d records: %w", n, err)
		}
		r.Recovery = append(r.Recovery, pt)
	}
	return r, nil
}

// durabilityRun boots one persistent cluster (journaling when durable) and
// returns delivered msgs/s plus mean and p99 ingest→delivery latency in ms.
func durabilityRun(opts DurabilityOpts, durable bool, fsync store.Fsync) (rate, meanMs, p99Ms float64, err error) {
	copts := cluster.Options{
		Space:          core.UniformSpace(4, 1000),
		Matchers:       4,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      5 * time.Second,
		ReportInterval: 50 * time.Millisecond,
		Persistent:     true,
		RetryInterval:  2 * time.Second,
	}
	if durable {
		dir, err := os.MkdirTemp("", "bluedove-durability-*")
		if err != nil {
			return 0, 0, 0, err
		}
		defer os.RemoveAll(dir)
		copts.DataDir = dir
		copts.Fsync = fsync
	}
	c, err := cluster.Start(copts)
	if err != nil {
		return 0, 0, 0, err
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		return 0, 0, 0, err
	}

	var mu sync.Mutex
	var latencies []float64
	delivered := 0
	full := []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	for i := 0; i < opts.Subscribers; i++ {
		cl, err := c.NewClient(i%2, func(m *core.Message, _ []core.SubscriptionID) {
			lat := float64(time.Now().UnixNano()-m.PublishedAt) / 1e6
			mu.Lock()
			delivered++
			latencies = append(latencies, lat)
			mu.Unlock()
		})
		if err != nil {
			return 0, 0, 0, err
		}
		if _, err := cl.Subscribe(full); err != nil {
			return 0, 0, 0, err
		}
	}
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return delivered
	}
	// Probe until the stores landed on every matcher.
	probeCl, err := c.NewClient(0, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	active := false
	for deadline := time.Now().Add(5 * time.Second); !active; {
		before := count()
		_ = probeCl.Publish([]float64{500, 500, 500, 500}, nil)
		for w := 0; w < 10 && count()-before < opts.Subscribers; w++ {
			time.Sleep(20 * time.Millisecond)
		}
		active = count()-before >= opts.Subscribers
		if !active && time.Now().After(deadline) {
			return 0, 0, 0, fmt.Errorf("experiment: subscriptions never became active")
		}
	}
	mu.Lock()
	base := delivered
	latencies = latencies[:0] // warm-up latencies out of the sample
	mu.Unlock()

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		return 0, 0, 0, err
	}
	start := time.Now()
	for i := 0; i < opts.Messages; i++ {
		attrs := []float64{float64(i % 1000), 500, 500, 500}
		for pubCl.Publish(attrs, nil) != nil {
			time.Sleep(time.Millisecond) // mesh backpressure
		}
	}
	// Drain until deliveries stop advancing: the dispatcher→matcher hop is
	// covered by persistence retries, but the matcher→client push sheds
	// load when a subscriber's inbound queue overflows, so an exact-count
	// wait could hang. Throughput is deliveries observed over the time of
	// the last delivery (the batching experiment's method).
	want := base + opts.Messages*opts.Subscribers
	last, lastAt := count(), time.Now()
	for time.Since(lastAt) < 500*time.Millisecond && last < want {
		time.Sleep(2 * time.Millisecond)
		if v := count(); v != last {
			last, lastAt = v, time.Now()
		}
	}
	elapsed := lastAt.Sub(start)
	got := float64(last-base) / float64(opts.Subscribers)

	mu.Lock()
	sample := append([]float64(nil), latencies...)
	mu.Unlock()
	sort.Float64s(sample)
	var sum float64
	for _, v := range sample {
		sum += v
	}
	meanMs = sum / float64(len(sample))
	p99Ms = sample[len(sample)*99/100]
	return got / elapsed.Seconds(), meanMs, p99Ms, nil
}

// recoveryPoint builds a journal of n subscription-sized records and times a
// cold store.Open over it.
func recoveryPoint(n int) (RecoveryPoint, error) {
	dir, err := os.MkdirTemp("", "bluedove-recovery-*")
	if err != nil {
		return RecoveryPoint{}, err
	}
	defer os.RemoveAll(dir)

	payload := make([]byte, 64) // a realistic journal record body
	write, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		return RecoveryPoint{}, err
	}
	for i := 0; i < n; i++ {
		if err := write.Append(1, payload); err != nil {
			write.Close()
			return RecoveryPoint{}, err
		}
	}
	if err := write.Close(); err != nil {
		return RecoveryPoint{}, err
	}

	replayed := 0
	start := time.Now()
	read, err := store.Open(store.Options{Dir: dir, Fsync: store.FsyncNever,
		Apply: func(kind uint8, payload []byte) error {
			replayed++
			return nil
		}})
	if err != nil {
		return RecoveryPoint{}, err
	}
	elapsed := time.Since(start)
	stats := read.Recovery()
	read.Close()
	if replayed != n {
		return RecoveryPoint{}, fmt.Errorf("recovered %d records, wrote %d", replayed, n)
	}
	return RecoveryPoint{Records: replayed, Bytes: stats.Bytes, Seconds: elapsed.Seconds()}, nil
}

// Table renders the fsync-policy comparison.
func (r *DurabilityResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Durability cost (in-proc cluster, %d msgs, %d subscribers)",
			r.Messages, r.Subscribers),
		Header: []string{"journal", "msgs/s", "slowdown", "mean ms", "p99 ms"},
	}
	for _, c := range r.Configs {
		t.AddRow(c.Name, c.MsgsPerSec, fmt.Sprintf("%.2fx", c.Slowdown), c.MeanMs, c.P99Ms)
	}
	return t
}

// RecoveryTable renders the recovery-time curve.
func (r *DurabilityResult) RecoveryTable() *Table {
	t := &Table{
		Title:  "Recovery time vs journal size (cold store.Open, 64-byte records)",
		Header: []string{"records", "journal bytes", "recovery ms", "records/s"},
	}
	for _, p := range r.Recovery {
		t.AddRow(p.Records, p.Bytes, p.Seconds*1e3, float64(p.Records)/p.Seconds)
	}
	return t
}
