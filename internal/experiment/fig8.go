package experiment

import (
	"fmt"
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Fig8Result reproduces Figure 8: per-matcher CPU load for BlueDove and the
// P2P baseline, each driven just below its own saturation rate. The paper's
// headline numbers are the normalized standard deviations (0.14 for
// BlueDove, 0.82 for P2P).
type Fig8Result struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size (paper: 20).
	Matchers int
	// BlueDove and P2P hold each matcher's busy fraction.
	BlueDove, P2P []float64
	// NormStdBlueDove and NormStdP2P are stddev/mean across matchers.
	NormStdBlueDove, NormStdP2P float64
}

// Fig8 regenerates Figure 8 at the given scale.
func Fig8(sc Scale) *Fig8Result {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]

	measure := func(v Variant) []float64 {
		sat := SaturationRate(sc, n, v, wcfg, subs)
		cl := sim.NewCluster(sc.VariantConfig(n, v))
		cl.SubscribeAll(subs)
		gen := workload.New(wcfg)
		const warm, window = 5 * time.Second, 15 * time.Second
		cl.Drive(gen, workload.ConstantRate(0.85*sat), int64(warm+window))
		cl.RunUntil(int64(warm))
		cl.MarkUtilization()
		cl.RunUntil(int64(warm + window))
		return cl.Utilizations(window)
	}

	r := &Fig8Result{Scale: sc.Name, Matchers: n}
	r.BlueDove = measure(BlueDoveVariant())
	r.P2P = measure(P2PVariant())
	r.NormStdBlueDove = metrics.NormStdDevOf(r.BlueDove)
	r.NormStdP2P = metrics.NormStdDevOf(r.P2P)
	return r
}

// Table renders per-matcher loads and the balance summary.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 8: per-matcher CPU load near saturation, %d matchers (%s scale)", r.Matchers, r.Scale),
		Note: fmt.Sprintf("paper: normalized stddev 0.14 (BlueDove) vs 0.82 (P2P); measured %.2f vs %.2f",
			r.NormStdBlueDove, r.NormStdP2P),
		Header: []string{"matcher", "BlueDove load", "P2P load"},
	}
	for i := range r.BlueDove {
		p2p := "-"
		if i < len(r.P2P) {
			p2p = fmt.Sprintf("%.3f", r.P2P[i])
		}
		t.AddRow(i+1, fmt.Sprintf("%.3f", r.BlueDove[i]), p2p)
	}
	t.AddRow("norm-stddev", fmt.Sprintf("%.3f", r.NormStdBlueDove), fmt.Sprintf("%.3f", r.NormStdP2P))
	return t
}
