// Edge-tier benchmark on the real edge server: one edge hosts up to 100k
// in-process subscriber sessions (edge.AttachLocal — the handshake, buffers,
// policies and resume machinery are the transport path; only the final write
// is a function call), a publication burst fans out through the per-edge
// re-match table, and each slow-consumer policy is exercised by a set of
// full-space "heavy" sessions whose acks are withheld:
//
//   - backpressure: heavy sessions churn slow/fast while a reconnect storm
//     detaches and resumes random sessions mid-burst; the run must end with
//     zero acked loss (every session saw exactly its matching publications),
//     double-checked by a sampled chaos auditor.
//   - drop-oldest: heavy sessions never ack until the end; the edge evicts
//     their oldest unsent deliveries, and after the drain the consumer must
//     be caught up to the head with only a bounded stale gap behind it.
//   - disconnect: heavy sessions overflow and are detached; a later resume
//     replays the bounded ring and reports everything that aged out, so
//     delivered + reported-lost must exactly account for the expected set.
//
// Loss accounting is exact and cheap: per-session delivery count plus a sum
// of delivered message IDs is compared against the expected set computed
// from sorted publication attributes (prefix sums + binary search), so the
// zero-loss check covers all 100k sessions, not a sample.
package experiment

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/edge"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// EdgeOpts parameterizes the edge-tier benchmark.
type EdgeOpts struct {
	Seed          int64 // drives attrs, churn and the storm (default 1)
	Sessions      int   // backpressure-phase session count (default 100_000)
	SmallSessions int   // drop-oldest/disconnect session count (default Sessions/5)
	Publications  int   // burst length (default 2000)
	BufferBytes   int   // per-session buffer/flight window (default 8 KiB)
	ResumeWindow  int   // resume ring entries (default 4096)
	Audited       int   // sessions double-checked by the chaos auditor (default 256)
}

func (o EdgeOpts) withDefaults() EdgeOpts {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Sessions <= 0 {
		o.Sessions = 100_000
	}
	if o.SmallSessions <= 0 {
		o.SmallSessions = o.Sessions / 5
	}
	if o.Publications <= 0 {
		o.Publications = 2000
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = 8 << 10
	}
	if o.ResumeWindow <= 0 {
		o.ResumeWindow = 4096
	}
	if o.Audited <= 0 {
		o.Audited = 256
	}
	return o
}

// EdgePolicyResult is the outcome of one policy phase.
type EdgePolicyResult struct {
	Policy       string
	Sessions     int
	WideSessions int // full-space heavy sessions driving the policy
	Publications int

	ExpectedDeliveries   int64 // matching (publication, session) pairs
	Delivered            int64 // distinct deliveries applications saw
	SuppressedDuplicates int64 // replay overlap absorbed client-side (seq dedup)

	AttachPerSec     float64 // session attach+subscribe rate
	DeliveriesPerSec float64 // fan-out throughput over the whole phase
	RunSecs          float64

	BackpressureWaits int64
	DroppedOldest     int64
	SlowDisconnects   int64
	StormDetaches     int64 // reconnect-storm connection kills
	Resumes           int64
	Replayed          int64
	ResumeLost        int64 // welcome-reported deliveries aged out of rings

	ZeroAckedLoss bool   // every checked session saw exactly its expected set
	LossDetail    string // first few violations when ZeroAckedLoss is false

	AuditDuplicates int    // sampled auditor: at-least-once redundancy
	AuditErr        string // sampled auditor: invariant violations

	// Drop-oldest staleness: after the drain a slow consumer must hold the
	// head, with only a bounded stale gap of evicted older deliveries.
	MaxStalenessGap  int64
	SlowTailCaughtUp bool

	// Disconnect accounting: delivered + reported-lost == expected on every
	// heavy session (nothing vanished without being declared).
	LossAccounted bool
}

// EdgeResult is the full three-policy benchmark outcome.
type EdgeResult struct {
	Seed         int64
	BufferBytes  int
	ResumeWindow int

	Backpressure EdgePolicyResult
	DropOldest   EdgePolicyResult
	Disconnect   EdgePolicyResult
}

// edgeBenchSess is one simulated subscriber session's book-keeping.
type edgeBenchSess struct {
	token uint64
	lo    float64
	hi    float64
	wide  bool
	aud   int // auditor subscriber index, -1 when unaudited

	mu         sync.Mutex
	lastSeq    uint64
	seen       int64
	idSum      uint64
	suppressed int64
	lost       uint64 // welcome-reported loss accumulated across resumes
	slow       bool   // withhold acks (the slow-consumer model)
	seqs       []uint64
}

// edgePhase configures one policy phase of the benchmark.
type edgePhase struct {
	policy       edge.Policy
	sessions     int
	wides        int
	stormEvery   int  // detach+resume a random narrow session every N pubs
	wideChurn    bool // toggle heavy sessions slow/fast on a timer
	wideNeverAck bool // heavy sessions withhold every ack until the drain
	resumeWindow int
	trackSeqs    bool // record heavy-session seqs for staleness analysis
}

// EdgeTier runs the three-policy edge benchmark and returns the results.
func EdgeTier(opts EdgeOpts) (*EdgeResult, error) {
	opts = opts.withDefaults()
	r := &EdgeResult{Seed: opts.Seed, BufferBytes: opts.BufferBytes, ResumeWindow: opts.ResumeWindow}

	bp, err := runEdgePhase(opts, edgePhase{
		policy:       edge.PolicyBackpressure,
		sessions:     opts.Sessions,
		wides:        16,
		stormEvery:   8,
		wideChurn:    true,
		resumeWindow: opts.ResumeWindow,
	})
	if err != nil {
		return nil, fmt.Errorf("backpressure phase: %w", err)
	}
	r.Backpressure = *bp

	do, err := runEdgePhase(opts, edgePhase{
		policy:       edge.PolicyDropOldest,
		sessions:     opts.SmallSessions,
		wides:        8,
		wideNeverAck: true,
		resumeWindow: opts.ResumeWindow,
		trackSeqs:    true,
	})
	if err != nil {
		return nil, fmt.Errorf("drop-oldest phase: %w", err)
	}
	r.DropOldest = *do

	rw := opts.ResumeWindow
	if rw > 512 {
		rw = 512 // small ring so the resume genuinely ages deliveries out
	}
	dc, err := runEdgePhase(opts, edgePhase{
		policy:       edge.PolicyDisconnect,
		sessions:     opts.SmallSessions,
		wides:        8,
		wideNeverAck: true,
		resumeWindow: rw,
	})
	if err != nil {
		return nil, fmt.Errorf("disconnect phase: %w", err)
	}
	r.Disconnect = *dc
	return r, nil
}

func runEdgePhase(opts EdgeOpts, ph edgePhase) (*EdgePolicyResult, error) {
	const spaceMax = 1000.0
	width := spaceMax * 0.005 // each narrow session matches ~0.5% of traffic
	rng := rand.New(rand.NewSource(opts.Seed))
	space := core.UniformSpace(1, spaceMax)

	mesh := transport.NewMesh(0)
	defer mesh.Close()
	// Minimal upstream dispatcher: acks the edge's aggregated subscribe.
	var nextSub uint64
	if _, err := mesh.Endpoint("disp").Listen("disp", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind != wire.KindSubscribe {
			return nil
		}
		nextSub++
		return &wire.Envelope{Kind: wire.KindSubscribeAck,
			Body: (&wire.SubscribeAckBody{ID: core.SubscriptionID(nextSub)}).Encode()}
	}); err != nil {
		return nil, err
	}
	e, err := edge.New(edge.Config{
		ID:             7,
		Addr:           "edge",
		Space:          space,
		Transport:      mesh.Endpoint("edge"),
		DispatcherAddr: "disp",
		Policy:         ph.policy,
		BufferBytes:    opts.BufferBytes,
		ResumeWindow:   ph.resumeWindow,
		FlushWorkers:   8,
	})
	if err != nil {
		return nil, err
	}
	if err := e.Start(); err != nil {
		return nil, err
	}
	defer e.Stop()

	aud := chaos.NewAuditor()
	sessions := make([]*edgeBenchSess, ph.sessions)
	sinks := make([]func(*wire.Envelope), ph.sessions)
	var delivered atomic.Int64
	stride := ph.sessions / opts.Audited
	if stride < 1 {
		stride = 1
	}

	// Heavy (full-space) sessions attach first so the aggregated upstream
	// cuboid is widened once; every narrow widen after that is covered.
	attachStart := time.Now()
	for i := range sessions {
		s := &edgeBenchSess{aud: -1}
		if i < ph.wides {
			s.wide, s.lo, s.hi = true, 0, spaceMax
			s.slow = ph.wideNeverAck
			// Heavy sessions join the audit only where they are expected to
			// end loss-free (the backpressure phase).
			if !ph.wideNeverAck {
				s.aud = i
			}
		} else {
			s.lo = rng.Float64() * (spaceMax - width)
			s.hi = s.lo + width
			if i%stride == 0 {
				s.aud = i
			}
		}
		if s.aud >= 0 {
			aud.Subscribed(s.aud, []core.Range{{Low: s.lo, High: s.hi}})
		}
		sink := edgeBenchSink(e, s, aud, &delivered, ph.trackSeqs)
		w, err := e.AttachLocal(&wire.SessionHelloBody{Subscriber: core.SubscriberID(i + 1)}, sink)
		if err != nil {
			return nil, fmt.Errorf("attach session %d: %w", i, err)
		}
		s.token = w.Token
		sub := core.NewSubscription(0, []core.Range{{Low: s.lo, High: s.hi}})
		if _, err := e.Subscribe(s.token, sub); err != nil {
			return nil, fmt.Errorf("subscribe session %d: %w", i, err)
		}
		sessions[i] = s
		sinks[i] = sink
	}
	attachSecs := time.Since(attachStart).Seconds()

	// Slow-consumer churn: a timer goroutine (independent of publisher
	// progress, which backpressure may stall) flips heavy sessions between
	// acking normally and withholding acks; un-slowing acks the catch-up.
	stopChurn := make(chan struct{})
	var churnWG sync.WaitGroup
	if ph.wideChurn {
		churnWG.Add(1)
		crng := rand.New(rand.NewSource(opts.Seed + 1))
		go func() {
			defer churnWG.Done()
			tick := time.NewTicker(2 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopChurn:
					return
				case <-tick.C:
				}
				s := sessions[crng.Intn(ph.wides)]
				s.mu.Lock()
				if s.slow {
					s.slow = false
					tok, last := s.token, s.lastSeq
					s.mu.Unlock()
					e.Ack(tok, last)
				} else {
					s.slow = true
					s.mu.Unlock()
				}
			}
		}()
	}

	// Publication burst with the reconnect storm riding along.
	runStart := time.Now()
	pubAttrs := make([]float64, opts.Publications)
	var stormDetaches int64
	for i := 0; i < opts.Publications; i++ {
		x := rng.Float64() * spaceMax
		pubAttrs[i] = x
		token := fmt.Sprintf("e-%06d", i)
		m := core.NewMessage([]float64{x}, []byte(token))
		m.ID = core.MessageID(i + 1)
		aud.Published(token, m.Attrs)
		e.Deliver(m)
		if ph.stormEvery > 0 && i%ph.stormEvery == ph.stormEvery-1 {
			v := ph.wides + rng.Intn(ph.sessions-ph.wides)
			s := sessions[v]
			s.mu.Lock()
			tok, last := s.token, s.lastSeq
			s.mu.Unlock()
			if e.Detach(tok) {
				stormDetaches++
				w, err := e.AttachLocal(&wire.SessionHelloBody{Token: tok, LastSeq: last}, sinks[v])
				if err != nil {
					return nil, fmt.Errorf("storm resume session %d: %w", v, err)
				}
				s.mu.Lock()
				s.lost += w.Lost
				s.mu.Unlock()
			}
		}
	}
	close(stopChurn)
	churnWG.Wait()

	// Drain: heavy sessions stop being slow. Under disconnect they were
	// detached by overflow and must resume (replaying the bounded ring and
	// learning what aged out); under the other policies a catch-up ack
	// reopens the flight window.
	time.Sleep(200 * time.Millisecond) // let in-flight flushes settle
	for i := 0; i < ph.wides; i++ {
		s := sessions[i]
		s.mu.Lock()
		s.slow = false
		tok, last := s.token, s.lastSeq
		s.mu.Unlock()
		if ph.policy == edge.PolicyDisconnect {
			w, err := e.AttachLocal(&wire.SessionHelloBody{Token: tok, LastSeq: last}, sinks[i])
			if err != nil {
				return nil, fmt.Errorf("drain resume heavy session %d: %w", i, err)
			}
			s.mu.Lock()
			s.lost += w.Lost
			s.mu.Unlock()
		} else {
			e.Ack(tok, last)
		}
	}

	// Expected sets from sorted publication attributes: prefix sums give each
	// session's (count, ID-sum) in O(log P).
	type pubPoint struct {
		x  float64
		id uint64
	}
	pts := make([]pubPoint, len(pubAttrs))
	for i, x := range pubAttrs {
		pts[i] = pubPoint{x: x, id: uint64(i + 1)}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
	prefCount := make([]int64, len(pts)+1)
	prefSum := make([]uint64, len(pts)+1)
	for i, p := range pts {
		prefCount[i+1] = prefCount[i] + 1
		prefSum[i+1] = prefSum[i] + p.id
	}
	// Predicate ranges are half-open [Low, High), matching core.Range.Contains.
	expectedFor := func(lo, hi float64) (int64, uint64) {
		a := sort.Search(len(pts), func(i int) bool { return pts[i].x >= lo })
		b := sort.Search(len(pts), func(i int) bool { return pts[i].x >= hi })
		return prefCount[b] - prefCount[a], prefSum[b] - prefSum[a]
	}
	var expectedTotal int64
	for _, s := range sessions {
		n, _ := expectedFor(s.lo, s.hi)
		expectedTotal += n
	}

	// Wait for the fan-out to drain: all expected deliveries, or no progress.
	deadline := time.Now().Add(60 * time.Second)
	lastN, lastChange := int64(-1), time.Now()
	for {
		n := delivered.Load()
		if n >= expectedTotal {
			break
		}
		if n != lastN {
			lastN, lastChange = n, time.Now()
		} else if time.Since(lastChange) > 1500*time.Millisecond {
			break
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	runSecs := time.Since(runStart).Seconds()

	res := &EdgePolicyResult{
		Policy:             ph.policy.String(),
		Sessions:           ph.sessions,
		WideSessions:       ph.wides,
		Publications:       opts.Publications,
		ExpectedDeliveries: expectedTotal,
		Delivered:          delivered.Load(),
		AttachPerSec:       float64(ph.sessions) / attachSecs,
		DeliveriesPerSec:   float64(delivered.Load()) / runSecs,
		RunSecs:            runSecs,
		BackpressureWaits:  e.BackpressureWaits(),
		DroppedOldest:      e.DroppedOldest(),
		SlowDisconnects:    e.SlowDisconnects(),
		StormDetaches:      stormDetaches,
		Resumes:            e.Resumes(),
		Replayed:           e.Replayed(),
		ZeroAckedLoss:      true,
		SlowTailCaughtUp:   true,
		LossAccounted:      true,
	}

	// Exact loss accounting over every session. Heavy sessions are held to
	// zero loss only under backpressure; under drop-oldest they are measured
	// for staleness, under disconnect for declared-loss accounting.
	var violations []string
	for i, s := range sessions {
		expCount, expSum := expectedFor(s.lo, s.hi)
		s.mu.Lock()
		seen, idSum, lost, suppressed := s.seen, s.idSum, s.lost, s.suppressed
		seqs := s.seqs
		s.mu.Unlock()
		res.SuppressedDuplicates += suppressed
		res.ResumeLost += int64(lost)
		if s.wide {
			switch ph.policy {
			case edge.PolicyDropOldest:
				// Staleness: the consumer must end holding the head, with a
				// bounded gap of evicted older deliveries behind it.
				head := uint64(expCount)
				if len(seqs) == 0 || seqs[len(seqs)-1] != head {
					res.SlowTailCaughtUp = false
				}
				var prev uint64
				for _, q := range seqs {
					if gap := int64(q-prev) - 1; gap > res.MaxStalenessGap {
						res.MaxStalenessGap = gap
					}
					prev = q
				}
				continue
			case edge.PolicyDisconnect:
				if seen+int64(lost) != expCount {
					res.LossAccounted = false
					violations = append(violations, fmt.Sprintf(
						"heavy session %d: %d delivered + %d declared lost != %d expected",
						i, seen, lost, expCount))
				}
				continue
			}
		}
		if seen != expCount || idSum != expSum {
			res.ZeroAckedLoss = false
			if len(violations) < 5 {
				violations = append(violations, fmt.Sprintf(
					"session %d [%g,%g]: saw %d deliveries (id sum %d), expected %d (id sum %d)",
					i, s.lo, s.hi, seen, idSum, expCount, expSum))
			}
		}
	}
	if len(violations) > 0 {
		res.LossDetail = fmt.Sprintf("%v", violations)
	}
	res.AuditDuplicates = aud.Duplicates()
	if err := aud.Check(); err != nil {
		// Heavy sessions legitimately miss deliveries under the lossy
		// policies; they are excluded from the audit there, so any auditor
		// failure is a real invariant violation.
		res.AuditErr = err.Error()
		res.ZeroAckedLoss = false
	}
	return res, nil
}

// edgeBenchSink builds a session's delivery sink: it drops replay duplicates
// by sequence (the client dedup model), records exact-delivery book-keeping,
// feeds the sampled auditor, and acks when the session is not playing slow.
func edgeBenchSink(e *edge.Edge, s *edgeBenchSess, aud *chaos.Auditor,
	delivered *atomic.Int64, trackSeqs bool) func(*wire.Envelope) {
	return func(env *wire.Envelope) {
		b, err := wire.DecodeEdgeDeliver(env.Body)
		if err != nil || b.Msg == nil {
			return
		}
		s.mu.Lock()
		dup := b.Seq <= s.lastSeq
		if dup {
			s.suppressed++
		} else {
			s.lastSeq = b.Seq
			s.seen++
			s.idSum += uint64(b.Msg.ID)
			if trackSeqs && s.wide {
				s.seqs = append(s.seqs, b.Seq)
			}
		}
		ackNow := !s.slow && !dup
		tok, audIdx := s.token, s.aud
		s.mu.Unlock()
		if audIdx >= 0 {
			aud.Delivered(audIdx, b.Msg)
		}
		if dup {
			return
		}
		delivered.Add(1)
		if ackNow {
			e.Ack(tok, b.Seq)
		}
	}
}

// Table renders the three-policy summary.
func (r *EdgeResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Edge tier (seed %d, buffer %d B, resume window %d)",
			r.Seed, r.BufferBytes, r.ResumeWindow),
		Header: []string{"metric", "backpressure", "drop-oldest", "disconnect"},
	}
	ps := []*EdgePolicyResult{&r.Backpressure, &r.DropOldest, &r.Disconnect}
	row := func(name string, f func(*EdgePolicyResult) interface{}) {
		t.AddRow(name, f(ps[0]), f(ps[1]), f(ps[2]))
	}
	row("sessions", func(p *EdgePolicyResult) interface{} { return p.Sessions })
	row("deliveries", func(p *EdgePolicyResult) interface{} { return p.Delivered })
	row("attach/s", func(p *EdgePolicyResult) interface{} { return p.AttachPerSec })
	row("deliveries/s", func(p *EdgePolicyResult) interface{} { return p.DeliveriesPerSec })
	row("bp waits", func(p *EdgePolicyResult) interface{} { return p.BackpressureWaits })
	row("dropped oldest", func(p *EdgePolicyResult) interface{} { return p.DroppedOldest })
	row("slow disconnects", func(p *EdgePolicyResult) interface{} { return p.SlowDisconnects })
	row("storm detaches", func(p *EdgePolicyResult) interface{} { return p.StormDetaches })
	row("resumes", func(p *EdgePolicyResult) interface{} { return p.Resumes })
	row("replayed", func(p *EdgePolicyResult) interface{} { return p.Replayed })
	row("resume lost", func(p *EdgePolicyResult) interface{} { return p.ResumeLost })
	row("zero acked loss", func(p *EdgePolicyResult) interface{} { return p.ZeroAckedLoss })
	return t
}
