package experiment

import (
	"fmt"
	"time"

	"bluedove/internal/metrics"
	"bluedove/internal/sim"
	"bluedove/internal/workload"
)

// Fig10Result reproduces Figure 10 (fault tolerance): matchers are killed
// one at a time under steady load; the loss rate spikes (to roughly one
// matcher's traffic share) until failure detection, then returns to zero,
// while response time blips but the system never saturates.
type Fig10Result struct {
	// Scale names the run scale.
	Scale string
	// StartMatchers is the initial size (paper: 20).
	StartMatchers int
	// Rate is the steady offered load.
	Rate float64
	// KillTimesSec lists the crash injection times (seconds).
	KillTimesSec []float64
	// Resp is the 1-second-averaged response time (seconds).
	Resp []metrics.Point
	// Loss is the per-second loss fraction.
	Loss []metrics.Point
	// PeakLoss is the maximum 1-second loss fraction observed.
	PeakLoss float64
	// MeanRecoverySec is the average time from a crash until the loss rate
	// returns to zero (paper: 17.5 s).
	MeanRecoverySec float64
}

// Fig10 regenerates Figure 10 at the given scale.
func Fig10(sc Scale) *Fig10Result {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	sat := SaturationRate(sc, n, BlueDoveVariant(), wcfg, subs)

	cfg := sc.SimConfig(n, BlueDoveVariant().Strategy, BlueDoveVariant().Policy)
	cfg.FailureDetectDelay = 10 * time.Second
	cfg.RecoveryDelay = 5 * time.Second
	cl := sim.NewCluster(cfg)
	cl.SubscribeAll(subs)

	rate := 0.4 * sat
	const killEvery, kills = 60 * time.Second, 3
	dur := killEvery * (kills + 1)
	gen := workload.New(wcfg)
	cl.Drive(gen, workload.ConstantRate(rate), int64(dur))
	r := &Fig10Result{Scale: sc.Name, StartMatchers: n, Rate: rate}
	for i := 1; i <= kills; i++ {
		at := int64(killEvery) * int64(i)
		cl.Engine().At(at, func() {
			if _, err := cl.FailRandomMatcher(); err == nil {
				r.KillTimesSec = append(r.KillTimesSec, float64(cl.Now())/1e9)
			}
		})
	}
	cl.RunUntil(int64(dur))

	r.Resp = cl.Stats().RespSeries.Downsample(int64(time.Second))
	r.Loss = cl.Stats().LossSeries.Points()
	for _, p := range r.Loss {
		if p.V > r.PeakLoss {
			r.PeakLoss = p.V
		}
	}
	// Recovery time: from each kill to the first subsequent second with
	// zero loss.
	var total float64
	var counted int
	for _, k := range r.KillTimesSec {
		for _, p := range r.Loss {
			ts := float64(p.T) / 1e9
			if ts > k && p.V == 0 {
				total += ts - k
				counted++
				break
			}
		}
	}
	if counted > 0 {
		r.MeanRecoverySec = total / float64(counted)
	}
	return r
}

// Table renders the loss and response series with kill markers.
func (r *Fig10Result) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Figure 10: fault tolerance, %d matchers at %.0f msg/s (%s scale)", r.StartMatchers, r.Rate, r.Scale),
		Note: fmt.Sprintf("paper: ~5%% loss spikes, recovery within ~17.5s; measured peak %.1f%%, mean recovery %.1fs",
			100*r.PeakLoss, r.MeanRecoverySec),
		Header: []string{"t(s)", "response (s)", "loss", "event"},
	}
	kills := map[int64]bool{}
	for _, k := range r.KillTimesSec {
		kills[int64(k)] = true
	}
	loss := map[int64]float64{}
	for _, p := range r.Loss {
		loss[p.T/1e9] = p.V
	}
	for _, p := range r.Resp {
		sec := p.T / 1e9
		ev := ""
		if kills[sec] {
			ev = "crash"
		}
		t.AddRow(sec, p.V, fmt.Sprintf("%.3f", loss[sec]), ev)
	}
	return t
}
