package experiment

import (
	"fmt"

	"bluedove/internal/forward"
	"bluedove/internal/placement"
	"bluedove/internal/workload"
)

// Fig11aResult reproduces Figure 11(a): saturation rate versus the number
// of searchable dimensions used by mPartition.
type Fig11aResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size.
	Matchers int
	// Dims is the sweep (1..k).
	Dims []int
	// Rates holds the saturation rate per dimensionality.
	Rates []float64
}

// Fig11a regenerates Figure 11(a) at the given scale.
func Fig11a(sc Scale) *Fig11aResult {
	wcfg := sc.Workload()
	subs := workload.New(wcfg).Subscriptions(sc.Subs)
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	r := &Fig11aResult{Scale: sc.Name, Matchers: n}
	for k := 1; k <= sc.Space.K(); k++ {
		v := Variant{
			Label:    fmt.Sprintf("%dd", k),
			Strategy: placement.BlueDove{Dims: k},
			Policy:   forward.Adaptive{},
			Index:    sc.IndexKind,
		}
		r.Dims = append(r.Dims, k)
		r.Rates = append(r.Rates, SaturationRate(sc, n, v, wcfg, subs))
	}
	return r
}

// Gain41 returns the 4-dimension saturation rate over the 1-dimension rate.
func (r *Fig11aResult) Gain41() float64 {
	if len(r.Rates) < 4 || r.Rates[0] == 0 {
		return 0
	}
	return r.Rates[3] / r.Rates[0]
}

// Table renders the dimensionality sweep.
func (r *Fig11aResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11(a): searchable dimensions, %d matchers (%s scale)", r.Matchers, r.Scale),
		Note:   "paper: 4 dimensions reach 5.5x the rate of 1 dimension",
		Header: []string{"dimensions", "saturation rate (msg/s)", "vs 1 dim"},
	}
	for i, k := range r.Dims {
		rel := "-"
		if r.Rates[0] > 0 {
			rel = fmt.Sprintf("%.1fx", r.Rates[i]/r.Rates[0])
		}
		t.AddRow(k, r.Rates[i], rel)
	}
	return t
}

// Fig11bResult reproduces Figure 11(b): saturation rate versus the standard
// deviation of the subscription distribution (larger σ = flatter = less
// skew to exploit).
type Fig11bResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size.
	Matchers int
	// StdDevs is the σ sweep in paper units (dimension extent 1000).
	StdDevs []float64
	// Rates holds the saturation rate per σ.
	Rates []float64
}

// Fig11b regenerates Figure 11(b) at the given scale.
func Fig11b(sc Scale) *Fig11bResult {
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	r := &Fig11bResult{Scale: sc.Name, Matchers: n}
	for _, sigma := range []float64{250, 500, 750, 1000} {
		wcfg := sc.Workload()
		wcfg.SubStdDev = sigma / 1000 * sc.Space.Dim(0).Extent()
		subs := workload.New(wcfg).Subscriptions(sc.Subs)
		r.StdDevs = append(r.StdDevs, sigma)
		r.Rates = append(r.Rates, SaturationRate(sc, n, BlueDoveVariant(), wcfg, subs))
	}
	return r
}

// Drop returns the fractional rate decrease from the first to the last σ.
func (r *Fig11bResult) Drop() float64 {
	if len(r.Rates) == 0 || r.Rates[0] == 0 {
		return 0
	}
	return 1 - r.Rates[len(r.Rates)-1]/r.Rates[0]
}

// Table renders the skew sweep.
func (r *Fig11bResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11(b): subscription skew (σ sweep), %d matchers (%s scale)", r.Matchers, r.Scale),
		Note:   fmt.Sprintf("paper: rate drops ~40%% from σ=250 to σ=1000 but stays far above P2P; measured drop %.0f%%", 100*r.Drop()),
		Header: []string{"σ", "saturation rate (msg/s)", "vs σ=250"},
	}
	for i, s := range r.StdDevs {
		rel := "-"
		if r.Rates[0] > 0 {
			rel = fmt.Sprintf("%.2fx", r.Rates[i]/r.Rates[0])
		}
		t.AddRow(s, r.Rates[i], rel)
	}
	return t
}

// Fig11cResult reproduces Figure 11(c): saturation rate versus the number
// of dimensions on which the message distribution is adversely skewed
// (hot-spot messages hitting hot-spot subscriptions).
type Fig11cResult struct {
	// Scale names the run scale.
	Scale string
	// Matchers is the system size.
	Matchers int
	// SkewedDims is the sweep 0..k.
	SkewedDims []int
	// Rates holds the saturation rate per skewed-dimension count.
	Rates []float64
}

// Fig11c regenerates Figure 11(c) at the given scale.
func Fig11c(sc Scale) *Fig11cResult {
	n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
	r := &Fig11cResult{Scale: sc.Name, Matchers: n}
	for sk := 0; sk <= sc.Space.K(); sk++ {
		wcfg := sc.Workload()
		wcfg.SkewedMsgDims = sk
		subs := workload.New(wcfg).Subscriptions(sc.Subs)
		r.SkewedDims = append(r.SkewedDims, sk)
		r.Rates = append(r.Rates, SaturationRate(sc, n, BlueDoveVariant(), wcfg, subs))
	}
	return r
}

// Drop returns the fractional rate decrease from 0 to all-skewed.
func (r *Fig11cResult) Drop() float64 {
	if len(r.Rates) == 0 || r.Rates[0] == 0 {
		return 0
	}
	return 1 - r.Rates[len(r.Rates)-1]/r.Rates[0]
}

// Table renders the adverse-skew sweep.
func (r *Fig11cResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Figure 11(c): adversely skewed message dimensions, %d matchers (%s scale)", r.Matchers, r.Scale),
		Note:   fmt.Sprintf("paper: rate drops >50%% with all 4 dimensions skewed yet stays above P2P; measured drop %.0f%%", 100*r.Drop()),
		Header: []string{"skewed dims", "saturation rate (msg/s)", "vs none"},
	}
	for i, sk := range r.SkewedDims {
		rel := "-"
		if r.Rates[0] > 0 {
			rel = fmt.Sprintf("%.2fx", r.Rates[i]/r.Rates[0])
		}
		t.AddRow(sk, r.Rates[i], rel)
	}
	return t
}
