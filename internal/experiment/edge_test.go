package experiment

import (
	"strings"
	"testing"
)

// TestEdgeTierBench runs the edge benchmark at a tiny scale: the invariants
// (zero acked loss under backpressure, bounded staleness under drop-oldest,
// full loss accounting under disconnect) must hold at any size.
func TestEdgeTierBench(t *testing.T) {
	r, err := EdgeTier(EdgeOpts{
		Sessions:      3000,
		SmallSessions: 1000,
		Publications:  400,
		Audited:       64,
	})
	if err != nil {
		t.Fatal(err)
	}

	bp := r.Backpressure
	if !bp.ZeroAckedLoss {
		t.Fatalf("backpressure acked loss: %s (audit: %s)", bp.LossDetail, bp.AuditErr)
	}
	if bp.Delivered != bp.ExpectedDeliveries {
		t.Fatalf("backpressure delivered %d, expected %d", bp.Delivered, bp.ExpectedDeliveries)
	}
	if bp.StormDetaches == 0 || bp.Resumes < bp.StormDetaches {
		t.Fatalf("reconnect storm: %d detaches, %d resumes", bp.StormDetaches, bp.Resumes)
	}
	if bp.AuditErr != "" {
		t.Fatalf("backpressure audit: %s", bp.AuditErr)
	}

	do := r.DropOldest
	if do.DroppedOldest == 0 {
		t.Fatal("drop-oldest phase evicted nothing; slow consumers not exercised")
	}
	if !do.SlowTailCaughtUp {
		t.Fatal("drop-oldest slow consumers did not end at the head sequence")
	}
	if do.MaxStalenessGap <= 0 {
		t.Fatal("drop-oldest recorded no stale gap despite evictions")
	}
	if !do.ZeroAckedLoss {
		t.Fatalf("drop-oldest lost deliveries on fast sessions: %s", do.LossDetail)
	}

	dc := r.Disconnect
	if dc.SlowDisconnects == 0 {
		t.Fatal("disconnect phase detached nothing")
	}
	if !dc.LossAccounted {
		t.Fatalf("disconnect loss unaccounted: %s", dc.LossDetail)
	}
	if !dc.ZeroAckedLoss {
		t.Fatalf("disconnect lost deliveries on fast sessions: %s", dc.LossDetail)
	}

	if !strings.Contains(r.Table().String(), "Edge tier") {
		t.Error("table title")
	}
}
