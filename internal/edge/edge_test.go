package edge

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// fakeDispatcher is an upstream stub: it acks subscribes, records the
// aggregated predicates the edge registers, and can push publications to the
// edge's deliver address.
type fakeDispatcher struct {
	mu     sync.Mutex
	nextID uint64
	subs   map[core.SubscriptionID]*core.Subscription
	unsubs []core.SubscriptionID
}

func (d *fakeDispatcher) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindSubscribe:
		b, err := wire.DecodeSubscribe(env.Body)
		if err != nil {
			return &wire.Envelope{Kind: wire.KindError, Body: (&wire.ErrorBody{Text: err.Error()}).Encode()}
		}
		d.mu.Lock()
		d.nextID++
		id := core.SubscriptionID(d.nextID)
		d.subs[id] = b.Sub
		d.mu.Unlock()
		return &wire.Envelope{Kind: wire.KindSubscribeAck, Body: (&wire.SubscribeAckBody{ID: id}).Encode()}
	case wire.KindUnsubscribe:
		if b, err := wire.DecodeUnsubscribe(env.Body); err == nil {
			d.mu.Lock()
			delete(d.subs, b.ID)
			d.unsubs = append(d.unsubs, b.ID)
			d.mu.Unlock()
		}
	}
	return nil
}

func (d *fakeDispatcher) active() []*core.Subscription {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*core.Subscription, 0, len(d.subs))
	for _, s := range d.subs {
		out = append(out, s)
	}
	return out
}

type edgeRig struct {
	mesh *transport.Mesh
	disp *fakeDispatcher
	edge *Edge
}

func newRig(t *testing.T, mut func(*Config)) *edgeRig {
	t.Helper()
	mesh := transport.NewMesh(0)
	disp := &fakeDispatcher{subs: make(map[core.SubscriptionID]*core.Subscription)}
	if _, err := mesh.Endpoint("disp").Listen("disp", disp.handle); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ID:             9,
		Addr:           "edge",
		Space:          core.UniformSpace(2, 100),
		Transport:      mesh.Endpoint("edge"),
		DispatcherAddr: "disp",
		BufferBytes:    1 << 20,
		ResumeWindow:   64,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Stop(); mesh.Close() })
	return &edgeRig{mesh: mesh, disp: disp, edge: e}
}

// sinkSession is a local consumer capturing decoded EdgeDeliver frames.
type sinkSession struct {
	mu     sync.Mutex
	frames []*wire.EdgeDeliverBody
}

func (c *sinkSession) sink(env *wire.Envelope) {
	b, err := wire.DecodeEdgeDeliver(env.Body)
	if err != nil {
		panic(err)
	}
	c.mu.Lock()
	c.frames = append(c.frames, b)
	c.mu.Unlock()
}

func (c *sinkSession) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func (c *sinkSession) lastSeq() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.frames) == 0 {
		return 0
	}
	return c.frames[len(c.frames)-1].Seq
}

func (c *sinkSession) msgIDs() []core.MessageID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]core.MessageID, len(c.frames))
	for i, f := range c.frames {
		ids[i] = f.Msg.ID
	}
	return ids
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func attach(t *testing.T, e *Edge, c *sinkSession) uint64 {
	t.Helper()
	w, err := e.AttachLocal(&wire.SessionHelloBody{Subscriber: 1}, c.sink)
	if err != nil {
		t.Fatal(err)
	}
	if w.Token == 0 {
		t.Fatal("welcome without token")
	}
	return w.Token
}

func subscribe(t *testing.T, e *Edge, token uint64, lo, hi float64) core.SubscriptionID {
	t.Helper()
	sub := core.NewSubscription(0, []core.Range{{Low: lo, High: hi}, {Low: 0, High: 100}})
	id, err := e.subscribe(token, sub)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func pub(e *Edge, id core.MessageID, attrs ...float64) {
	m := core.NewMessage(attrs, []byte("p"))
	m.ID = id
	e.fanOutMsg(m)
}

func TestEdgeFanOutMatchesSessions(t *testing.T) {
	r := newRig(t, nil)
	a, b := &sinkSession{}, &sinkSession{}
	ta := attach(t, r.edge, a)
	tb := attach(t, r.edge, b)
	subscribe(t, r.edge, ta, 0, 50)
	idB := subscribe(t, r.edge, tb, 40, 100)

	pub(r.edge, 1, 10, 5)  // only A
	pub(r.edge, 2, 45, 5)  // both
	pub(r.edge, 3, 90, 5)  // only B
	waitFor(t, "A=2 B=2 deliveries", func() bool { return a.count() == 2 && b.count() == 2 })
	if ids := a.msgIDs(); ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("A got %v, want [1 2]", ids)
	}
	if ids := b.msgIDs(); ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("B got %v, want [2 3]", ids)
	}
	// Delivery frames carry the matching local subscription IDs.
	b.mu.Lock()
	subIDs := b.frames[0].SubIDs
	b.mu.Unlock()
	if len(subIDs) != 1 || subIDs[0] != idB {
		t.Fatalf("B sub ids %v, want [%d]", subIDs, idB)
	}
	// Sequences are per-session and contiguous from 1.
	if a.frames[0].Seq != 1 || a.frames[1].Seq != 2 {
		t.Fatalf("A seqs %d,%d want 1,2", a.frames[0].Seq, a.frames[1].Seq)
	}
	if r.edge.Sessions() != 2 {
		t.Fatalf("sessions = %d, want 2", r.edge.Sessions())
	}
}

func TestEdgeUnsubscribeStopsDelivery(t *testing.T) {
	r := newRig(t, nil)
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	id := subscribe(t, r.edge, tok, 0, 100)
	pub(r.edge, 1, 50, 50)
	waitFor(t, "first delivery", func() bool { return c.count() == 1 })
	r.edge.unsubscribe(tok, id)
	pub(r.edge, 2, 50, 50)
	time.Sleep(20 * time.Millisecond)
	if c.count() != 1 {
		t.Fatalf("delivered after unsubscribe: %d frames", c.count())
	}
}

// TestEdgeAggregateWidens: the upstream registration is the bounding cuboid
// of local predicates, re-registered (new before old is dropped) only when a
// subscription falls outside it.
func TestEdgeAggregateWidens(t *testing.T) {
	r := newRig(t, nil)
	c := &sinkSession{}
	tok := attach(t, r.edge, c)

	subscribe(t, r.edge, tok, 20, 30)
	active := r.disp.active()
	if len(active) != 1 {
		t.Fatalf("%d upstream subs, want 1", len(active))
	}
	if p := active[0].Predicates[0]; p.Low != 20 || p.High != 30 {
		t.Fatalf("aggregate dim0 = %+v, want [20,30)", p)
	}

	// Covered subscription: no upstream traffic.
	subscribe(t, r.edge, tok, 22, 28)
	if n := len(r.disp.active()); n != 1 {
		t.Fatalf("covered sub re-registered upstream: %d subs", n)
	}

	// Widening subscription: one replacement registration, old one dropped
	// (the drop is a one-way frame; wait for it to land).
	subscribe(t, r.edge, tok, 50, 60)
	waitFor(t, "replaced cuboid unsubscribed", func() bool { return len(r.disp.active()) == 1 })
	active = r.disp.active()
	if p := active[0].Predicates[0]; p.Low != 20 || p.High != 60 {
		t.Fatalf("widened aggregate dim0 = %+v, want [20,60)", p)
	}
	r.disp.mu.Lock()
	unsubs := len(r.disp.unsubs)
	r.disp.mu.Unlock()
	if unsubs != 1 {
		t.Fatalf("%d upstream unsubs, want 1 (the replaced cuboid)", unsubs)
	}
}

// TestEdgeBackpressurePolicy: with acks withheld, fan-in fills the flight
// window and then the pending buffer, and the publisher-side call blocks
// instead of dropping; acking drains everything.
func TestEdgeBackpressurePolicy(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = PolicyBackpressure
		c.BufferBytes = 256 // a few frames per window
		c.ResumeWindow = 1 << 20
	})
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)

	const total = 200
	done := make(chan struct{})
	go func() {
		for i := 1; i <= total; i++ {
			pub(r.edge, core.MessageID(i), 50, 50)
		}
		close(done)
	}()
	// The publisher must stall: without acks at most
	// flight window + pending buffer fits.
	select {
	case <-done:
		t.Fatal("publisher never blocked under backpressure")
	case <-time.After(100 * time.Millisecond):
	}
	if r.edge.BackpressureWaits() == 0 {
		t.Fatal("no backpressure waits counted")
	}
	// Ack everything seen, repeatedly, until the publisher finishes.
	for {
		r.edge.ack(tok, c.lastSeq())
		select {
		case <-done:
			r.edge.ack(tok, c.lastSeq())
			waitFor(t, "all frames delivered", func() bool { return c.count() == total })
			ids := c.msgIDs()
			for i, id := range ids {
				if id != core.MessageID(i+1) {
					t.Fatalf("frame %d carries msg %d: loss or reorder", i, id)
				}
			}
			if r.edge.DroppedOldest() != 0 || r.edge.SlowDisconnects() != 0 {
				t.Fatal("backpressure policy dropped or disconnected")
			}
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestEdgeDropOldestPolicy: a consumer that never acks keeps only the newest
// window; drops are counted and the tail is intact.
func TestEdgeDropOldestPolicy(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = PolicyDropOldest
		c.BufferBytes = 512
	})
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)
	const total = 300
	for i := 1; i <= total; i++ {
		pub(r.edge, core.MessageID(i), 50, 50)
	}
	waitFor(t, "drops under drop-oldest", func() bool { return r.edge.DroppedOldest() > 0 })
	// Quiesce, then ack what arrived so the remainder flushes.
	waitFor(t, "buffer drained", func() bool {
		r.edge.ack(tok, c.lastSeq())
		return int64(c.count())+r.edge.DroppedOldest() >= total
	})
	ids := c.msgIDs()
	// Delivered message IDs must be strictly increasing (staleness is
	// bounded by eviction: only older traffic goes missing).
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("out-of-order delivery %d after %d", ids[i], ids[i-1])
		}
	}
	if ids[len(ids)-1] != total {
		t.Fatalf("newest message %d lost under drop-oldest, want %d", ids[len(ids)-1], total)
	}
	if r.edge.BackpressureWaits() != 0 {
		t.Fatal("drop-oldest policy blocked")
	}
}

// TestEdgeDisconnectPolicy: overflow detaches the session (counted), and the
// session can resume afterwards.
func TestEdgeDisconnectPolicy(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = PolicyDisconnect
		c.BufferBytes = 512
		c.ResumeWindow = 16
	})
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)
	for i := 1; i <= 300; i++ {
		pub(r.edge, core.MessageID(i), 50, 50)
	}
	if r.edge.SlowDisconnects() != 1 {
		t.Fatalf("slow disconnects = %d, want 1", r.edge.SlowDisconnects())
	}
	if r.edge.Sessions() != 0 {
		t.Fatalf("sessions = %d after disconnect, want 0", r.edge.Sessions())
	}
	// Resume picks up the newest ResumeWindow deliveries.
	c2 := &sinkSession{}
	w, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: tok, LastSeq: c.lastSeq()}, c2.sink)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Resumed {
		t.Fatal("welcome not marked resumed")
	}
	waitFor(t, "replayed tail", func() bool {
		r.edge.ack(tok, c2.lastSeq())
		return c2.count() >= 16
	})
	ids := c2.msgIDs()
	if ids[len(ids)-1] != 300 {
		t.Fatalf("resume tail ends at %d, want 300", ids[len(ids)-1])
	}
}

// TestEdgeResumeReplaysWindow: a detached session misses nothing that fits
// in the resume window, and Lost reports exactly what aged out.
func TestEdgeResumeReplaysWindow(t *testing.T) {
	r := newRig(t, func(c *Config) { c.ResumeWindow = 10 })
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)

	pub(r.edge, 1, 50, 50)
	pub(r.edge, 2, 50, 50)
	waitFor(t, "live deliveries", func() bool { return c.count() == 2 })
	r.edge.ack(tok, c.lastSeq())
	if !r.edge.Detach(tok) {
		t.Fatal("detach failed")
	}

	// Within the window: 8 missed publications, all retained.
	for i := 3; i <= 10; i++ {
		pub(r.edge, core.MessageID(i), 50, 50)
	}
	c2 := &sinkSession{}
	w, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: tok, LastSeq: 2}, c2.sink)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Resumed || w.Lost != 0 {
		t.Fatalf("welcome %+v, want resumed with 0 lost", w)
	}
	waitFor(t, "replay of 8", func() bool { return c2.count() == 8 })
	for i, id := range c2.msgIDs() {
		if id != core.MessageID(i+3) {
			t.Fatalf("replay frame %d carries msg %d, want %d", i, id, i+3)
		}
	}
	if r.edge.Replayed() != 8 {
		t.Fatalf("replayed = %d, want 8", r.edge.Replayed())
	}

	// Beyond the window: only the newest 10 survive, Lost counts the rest.
	r.edge.ack(tok, c2.lastSeq())
	r.edge.Detach(tok)
	for i := 11; i <= 40; i++ {
		pub(r.edge, core.MessageID(i), 50, 50)
	}
	c3 := &sinkSession{}
	w, err = r.edge.AttachLocal(&wire.SessionHelloBody{Token: tok, LastSeq: c2.lastSeq()}, c3.sink)
	if err != nil {
		t.Fatal(err)
	}
	if w.Lost != 20 { // 30 missed, window keeps 10
		t.Fatalf("lost = %d, want 20", w.Lost)
	}
	waitFor(t, "windowed replay", func() bool { return c3.count() == 10 })
	if ids := c3.msgIDs(); ids[0] != 31 || ids[9] != 40 {
		t.Fatalf("windowed replay %v, want msgs 31..40", ids)
	}
}

// TestEdgeResumeAfterAckedOverlap: resuming with a LastSeq older than what
// was acked re-delivers nothing already confirmed — the ring was trimmed at
// ack time, and the overlap shows up as Lost, to be absorbed by client dedup.
func TestEdgeResumeUnknownToken(t *testing.T) {
	r := newRig(t, nil)
	_, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: 999}, (&sinkSession{}).sink)
	if err == nil {
		t.Fatal("resume of unknown token accepted")
	}
}

func TestEdgeSessionValidation(t *testing.T) {
	r := newRig(t, nil)
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	// Wrong dimensionality is rejected.
	if _, err := r.edge.subscribe(tok, core.NewSubscription(0, []core.Range{{Low: 0, High: 1}})); err == nil {
		t.Fatal("1-dim subscription accepted in 2-dim space")
	}
	// Unknown session token is rejected.
	sub := core.NewSubscription(0, []core.Range{{Low: 0, High: 1}, {Low: 0, High: 1}})
	if _, err := r.edge.subscribe(12345, sub); err == nil {
		t.Fatal("subscribe on unknown token accepted")
	}
}

// TestEdgeHandleFrames drives the same flows through wire frames, as a
// transport-attached session would.
func TestEdgeHandleFrames(t *testing.T) {
	r := newRig(t, nil)
	// A mesh endpoint for the client side.
	var mu sync.Mutex
	var got []*wire.EdgeDeliverBody
	cl := r.mesh.Endpoint("client")
	if _, err := cl.Listen("client", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind == wire.KindEdgeDeliver {
			if b, err := wire.DecodeEdgeDeliver(env.Body); err == nil {
				mu.Lock()
				got = append(got, b)
				mu.Unlock()
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	hello := &wire.SessionHelloBody{Subscriber: 7, DeliverAddr: "client"}
	resp, err := cl.Request("edge", &wire.Envelope{Kind: wire.KindSessionHello, Body: hello.Encode()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wire.DecodeSessionWelcome(resp.Body)
	if err != nil || w.Err != "" {
		t.Fatalf("welcome %+v err %v", w, err)
	}

	sub := core.NewSubscription(0, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	sb := &wire.SessionSubBody{Token: w.Token, Sub: sub}
	resp, err = cl.Request("edge", &wire.Envelope{Kind: wire.KindSessionSub, Body: sb.Encode()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := wire.DecodeSessionSubAck(resp.Body)
	if err != nil || ack.Err != "" {
		t.Fatalf("sub ack %+v err %v", ack, err)
	}

	pub(r.edge, 42, 50, 50)
	waitFor(t, "frame delivery", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 })
	mu.Lock()
	if got[0].Msg.ID != 42 || got[0].Seq != 1 {
		t.Fatalf("frame %+v, want msg 42 seq 1", got[0])
	}
	mu.Unlock()

	// Ack via frame, then unsub via frame.
	if err := cl.Send("edge", &wire.Envelope{Kind: wire.KindSessionAck,
		Body: (&wire.SessionAckBody{Token: w.Token, Seq: 1}).Encode()}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Send("edge", &wire.Envelope{Kind: wire.KindSessionUnsub,
		Body: (&wire.SessionUnsubBody{Token: w.Token, ID: ack.ID}).Encode()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "unsub applied", func() bool {
		r.edge.mu.Lock()
		defer r.edge.mu.Unlock()
		return r.edge.idx.Len() == 0
	})
}

// TestEdgeManySessions exercises the readiness loop with a few thousand
// sessions on one edge: every session gets every matching message, with no
// per-session goroutines.
func TestEdgeManySessions(t *testing.T) {
	const sessions = 2000
	r := newRig(t, func(c *Config) { c.FlushWorkers = 8 })
	sinks := make([]*sinkSession, sessions)
	toks := make([]uint64, sessions)
	for i := range sinks {
		sinks[i] = &sinkSession{}
		toks[i] = attach(t, r.edge, sinks[i])
		subscribe(t, r.edge, toks[i], 0, 100)
	}
	const msgs = 10
	for m := 1; m <= msgs; m++ {
		pub(r.edge, core.MessageID(m), 50, 50)
	}
	waitFor(t, fmt.Sprintf("%d sessions x %d msgs", sessions, msgs), func() bool {
		for _, s := range sinks {
			if s.count() != msgs {
				return false
			}
		}
		return true
	})
	if got := r.edge.FanOut(); got != sessions*msgs {
		t.Fatalf("fan-out = %d, want %d", got, sessions*msgs)
	}
}

// TestEdgeBackpressureAcksNotStarvedOnTransport is the full-wire regression
// for the fan-in staging queue: on a transport that drains one-way frames
// per address with a single goroutine, a backpressured session must not
// block that goroutine, or the SessionAck frames queued behind the stalled
// delivery would never be processed and the whole edge would deadlock.
func TestEdgeBackpressureAcksNotStarvedOnTransport(t *testing.T) {
	r := newRig(t, func(c *Config) {
		c.Policy = PolicyBackpressure
		c.BufferBytes = 256 // a few frames per window
		c.ResumeWindow = 1 << 20
	})
	var mu sync.Mutex
	var got []*wire.EdgeDeliverBody
	cl := r.mesh.Endpoint("client")
	if _, err := cl.Listen("client", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind == wire.KindEdgeDeliver {
			if b, err := wire.DecodeEdgeDeliver(env.Body); err == nil {
				mu.Lock()
				got = append(got, b)
				mu.Unlock()
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	hello := &wire.SessionHelloBody{Subscriber: 7, DeliverAddr: "client"}
	resp, err := cl.Request("edge", &wire.Envelope{Kind: wire.KindSessionHello, Body: hello.Encode()}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wire.DecodeSessionWelcome(resp.Body)
	if err != nil || w.Err != "" {
		t.Fatalf("welcome %+v err %v", w, err)
	}
	sub := core.NewSubscription(0, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	if _, err := cl.Request("edge", &wire.Envelope{Kind: wire.KindSessionSub,
		Body: (&wire.SessionSubBody{Token: w.Token, Sub: sub}).Encode()}, time.Second); err != nil {
		t.Fatal(err)
	}

	// Push far more than buffer + flight window of upstream deliveries as
	// one-way frames — they all land on the edge's single inbound queue.
	const total = 120
	up := r.mesh.Endpoint("up")
	for i := 1; i <= total; i++ {
		m := core.NewMessage([]float64{50, 50}, []byte("p"))
		m.ID = core.MessageID(i)
		if err := up.Send("edge", &wire.Envelope{Kind: wire.KindDeliver,
			Body: (&wire.DeliverBody{Msg: m}).Encode()}); err != nil {
			t.Fatal(err)
		}
	}
	last := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		if len(got) == 0 {
			return 0
		}
		return got[len(got)-1].Seq
	}
	count := func() int { mu.Lock(); defer mu.Unlock(); return len(got) }
	// Acks arrive on the SAME transport queue, behind the deliveries.
	// Before the staging queue this deadlocked: fan-in blocked the serve
	// goroutine, so the acks were never handled.
	waitFor(t, "all deliveries through ack-driven window", func() bool {
		if err := cl.Send("edge", &wire.Envelope{Kind: wire.KindSessionAck,
			Body: (&wire.SessionAckBody{Token: w.Token, Seq: last()}).Encode()}); err != nil {
			t.Fatal(err)
		}
		return count() == total
	})
	mu.Lock()
	defer mu.Unlock()
	for i, b := range got {
		if b.Msg.ID != core.MessageID(i+1) {
			t.Fatalf("frame %d carries msg %d: loss or reorder", i, b.Msg.ID)
		}
	}
}

// TestEdgeFlightWindowClosesOnEntries: with deliveries much smaller than
// BufferBytes/ResumeWindow, the flight window must still close after
// ResumeWindow sent-but-unacked entries instead of evicting them — a
// consumer that stops acking stops being sent to, and nothing unacked ages
// out of an attached session's ring.
func TestEdgeFlightWindowClosesOnEntries(t *testing.T) {
	const window = 8
	r := newRig(t, func(c *Config) {
		c.Policy = PolicyBackpressure
		c.BufferBytes = 1 << 20 // bytes never bind; entries must
		c.ResumeWindow = window
	})
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)

	const total = 50
	for i := 1; i <= total; i++ {
		pub(r.edge, core.MessageID(i), 50, 50)
	}
	waitFor(t, "flight window filled", func() bool { return c.count() == window })
	time.Sleep(30 * time.Millisecond)
	if n := c.count(); n != window {
		t.Fatalf("%d deliveries without an ack, want the window to close at %d", n, window)
	}
	if ev := r.edge.RingEvicted(); ev != 0 {
		t.Fatalf("%d unacked entries evicted from an attached session's ring", ev)
	}
	// Acking reopens the window; everything arrives with nothing lost.
	waitFor(t, "all frames after acks", func() bool {
		r.edge.ack(tok, c.lastSeq())
		return c.count() == total
	})
	for i, id := range c.msgIDs() {
		if id != core.MessageID(i+1) {
			t.Fatalf("frame %d carries msg %d: loss or reorder", i, id)
		}
	}
}

// TestEdgeSessionCloseFreesState: a SessionClose frame removes the session,
// its subscriptions and its buffered bytes; the token cannot be resumed.
func TestEdgeSessionCloseFreesState(t *testing.T) {
	r := newRig(t, nil)
	c := &sinkSession{}
	tok := attach(t, r.edge, c)
	subscribe(t, r.edge, tok, 0, 100)
	pub(r.edge, 1, 50, 50)
	pub(r.edge, 2, 50, 50)
	waitFor(t, "deliveries", func() bool { return c.count() == 2 })
	if r.edge.BufferedBytes() == 0 {
		t.Fatal("no bytes in flight before close")
	}
	// Close through the wire path, as a client would.
	r.edge.handle(&wire.Envelope{Kind: wire.KindSessionClose,
		Body: (&wire.SessionCloseBody{Token: tok}).Encode()})
	if r.edge.Sessions() != 0 {
		t.Fatalf("sessions = %d after close, want 0", r.edge.Sessions())
	}
	if b := r.edge.BufferedBytes(); b != 0 {
		t.Fatalf("buffered bytes = %d after close, want 0", b)
	}
	r.edge.mu.Lock()
	idxLen := r.edge.idx.Len()
	r.edge.mu.Unlock()
	if idxLen != 0 {
		t.Fatalf("index holds %d subscriptions after close, want 0", idxLen)
	}
	if _, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: tok}, c.sink); err == nil {
		t.Fatal("closed token resumed")
	}
	if r.edge.CloseSession(tok) {
		t.Fatal("double close reported a live session")
	}
}

// TestEdgeSessionRetentionExpiry: a session detached longer than
// SessionRetention is reaped — ring bytes freed, subscriptions gone, token
// dead — while attached and recently-detached sessions are untouched.
func TestEdgeSessionRetentionExpiry(t *testing.T) {
	var now atomic.Int64
	now.Store(1)
	r := newRig(t, func(c *Config) {
		c.SessionRetention = time.Second
		c.Now = func() int64 { return now.Load() }
	})
	old, fresh, live := &sinkSession{}, &sinkSession{}, &sinkSession{}
	tokOld := attach(t, r.edge, old)
	subscribe(t, r.edge, tokOld, 0, 100)
	tokLive := attach(t, r.edge, live)
	subscribe(t, r.edge, tokLive, 0, 100)

	pub(r.edge, 1, 50, 50)
	waitFor(t, "deliveries", func() bool { return old.count() == 1 && live.count() == 1 })
	r.edge.Detach(tokOld)

	now.Add(int64(900 * time.Millisecond))
	tokFresh := attach(t, r.edge, fresh)
	r.edge.Detach(tokFresh)

	now.Add(int64(300 * time.Millisecond)) // old is 1.2s stale, fresh only 0.3s
	if n := r.edge.sweepExpired(now.Load()); n != 1 {
		t.Fatalf("sweep reaped %d sessions, want 1", n)
	}
	if r.edge.SessionsExpired() != 1 {
		t.Fatalf("expired counter = %d, want 1", r.edge.SessionsExpired())
	}
	if _, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: tokOld}, old.sink); err == nil {
		t.Fatal("expired token resumed")
	}
	// The fresh detached session and the attached one survive.
	if _, err := r.edge.AttachLocal(&wire.SessionHelloBody{Token: tokFresh}, fresh.sink); err != nil {
		t.Fatalf("in-retention token refused: %v", err)
	}
	pub(r.edge, 2, 50, 50)
	waitFor(t, "live session still served", func() bool { return live.count() == 2 })
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]Policy{
		"":             PolicyBackpressure,
		"backpressure": PolicyBackpressure,
		"drop-oldest":  PolicyDropOldest,
		"disconnect":   PolicyDisconnect,
	} {
		got, err := PolicyByName(name)
		if err != nil || got != want {
			t.Fatalf("PolicyByName(%q) = %v, %v", name, got, err)
		}
		if name != "" && got.String() != name {
			t.Fatalf("round trip %q -> %q", name, got.String())
		}
	}
	if _, err := PolicyByName("bogus"); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
