// Package edge implements BlueDove's edge connection tier: a server that
// multiplexes many lightweight subscriber sessions behind one aggregated
// upstream subscriber, making delivery fan-out a first-class, separately
// scalable stage (in the spirit of MigratoryData's edge servers fronting
// ~100k connections per node).
//
// An edge registers ONE subscription per (edge, dimension-range) with a
// dispatcher — the bounding cuboid of every local session predicate,
// widened (never shrunk) as sessions subscribe — and re-matches each
// incoming DeliverBatch against a per-edge subscription table built on
// internal/index (covering included). Matched publications are
// sequence-stamped per session and pushed as KindEdgeDeliver frames.
//
// The hot path is an epoll-style readiness loop, not a goroutine pair per
// session: fan-in appends to per-session bounded buffers and marks the
// session ready; a small fixed pool of flush workers drains ready sessions.
// The per-connection read goroutines belong to the transport layer — the
// edge itself adds no per-session goroutines.
//
// Upstream deliveries are staged on a fan-in queue drained by a dedicated
// goroutine rather than fanned out on the transport's inbound goroutine:
// transports deliver one-way frames per address in order, so a fan-in stall
// (a backpressured session) must never block the handler, or the very ack
// frames that would relieve the stall would be starved behind it. Control
// frames (acks, unsubs, closes) are always handled inline; the staging
// queue's depth is observable as edge.fanin_staged.
//
// Each session's send buffer is bounded (Config.BufferBytes) with a
// configurable slow-consumer policy:
//
//   - backpressure: fan-in blocks until the consumer acks — nothing is
//     dropped while the session is attached, and the stall propagates
//     upstream exactly like TCP backpressure would.
//   - drop-oldest: the oldest unsent delivery is evicted to make room; the
//     consumer sees only newer traffic (bounded staleness).
//   - disconnect: the session is detached on overflow; it may resume later.
//
// Flow control is ack-driven: a session may have at most BufferBytes of
// sent-but-unacked deliveries — and at most ResumeWindow of them, so the
// window closes even when frames are tiny — in flight, so a consumer that
// stops acking stops being sent to; slowness is modeled at the edge,
// independent of the transport's own buffering. Sessions carry a resumable
// token: a reconnecting subscriber replays everything newer than its last
// seen sequence from a bounded per-session ring (Config.ResumeWindow
// entries; while a session is attached nothing unacked is ever evicted from
// it — the ring is only trimmed to the window while the session is away).
// Deliveries that aged out of the ring are reported as lost in the welcome.
// A session ends for good on a KindSessionClose frame or, if it stays
// detached longer than Config.SessionRetention, by expiry — either way its
// buffers, ring and subscriptions are freed and the token is gone.
package edge

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/index"
	"bluedove/internal/metrics"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Policy selects what happens to a session whose send buffer is full.
type Policy uint8

// Slow-consumer policies.
const (
	// PolicyBackpressure blocks fan-in until the consumer acks (default).
	PolicyBackpressure Policy = iota
	// PolicyDropOldest evicts the oldest unsent delivery to make room.
	PolicyDropOldest
	// PolicyDisconnect detaches the session on overflow.
	PolicyDisconnect
)

// String names the policy as it appears in flags and telemetry labels.
func (p Policy) String() string {
	switch p {
	case PolicyBackpressure:
		return "backpressure"
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// PolicyByName parses a policy name.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case "", "backpressure":
		return PolicyBackpressure, nil
	case "drop-oldest":
		return PolicyDropOldest, nil
	case "disconnect":
		return PolicyDisconnect, nil
	}
	return 0, fmt.Errorf("edge: unknown slow-consumer policy %q", name)
}

// subscriberBit tags the edge's aggregated upstream subscriber ID so it can
// never collide with a real client's SubscriberID (matchers group deliveries
// per subscriber; a collision would misroute a direct client's traffic).
const subscriberBit uint64 = 0xE << 56

// Config parameterizes an Edge.
type Config struct {
	// ID is the edge's node identity; required.
	ID core.NodeID
	// Addr is the listen address for session traffic and upstream
	// deliveries; required.
	Addr string
	// Space is the attribute space; required.
	Space *core.Space
	// Transport carries all edge traffic; required.
	Transport transport.Transport
	// DispatcherAddr is the upstream front end the aggregated subscriber
	// registers with; required.
	DispatcherAddr string
	// Policy is the slow-consumer policy (default backpressure).
	Policy Policy
	// BufferBytes bounds each session's unsent backlog and its
	// sent-but-unacked flight window (default 256 KiB).
	BufferBytes int
	// ResumeWindow bounds the per-session resume ring, in deliveries
	// (default 1024). It also caps the sent-but-unacked flight window in
	// entries, so unacked deliveries never age out of an attached session's
	// ring.
	ResumeWindow int
	// SessionRetention is how long a detached session is kept resumable
	// before it expires and its ring, buffers and subscriptions are freed
	// (default 10m; negative keeps sessions forever).
	SessionRetention time.Duration
	// FlushWorkers sizes the readiness-loop worker pool (default 4).
	FlushWorkers int
	// IndexKind selects the per-edge subscription index (default bucket).
	IndexKind index.Kind
	// IndexBuckets overrides the bucket index's bucket count (0 = default).
	IndexBuckets int
	// Covering wraps the table with subscription covering/aggregation, so
	// templated session predicates collapse to one indexed entry per shape
	// (default on; set NoCovering to disable).
	NoCovering bool
	// RequestTimeout bounds the upstream subscribe round-trip (default 5s).
	RequestTimeout time.Duration
	// Telemetry, when non-nil, registers the edge.* metric family.
	Telemetry *telemetry.Telemetry
	// Now supplies the clock for rate meters (default time.Now).
	Now func() int64
}

// entry is one buffered delivery: an encoded EdgeDeliverBody and its
// sequence, retained from fan-in until acked (or aged out of the ring).
type entry struct {
	seq  uint64
	size int
	body []byte
}

// session is one subscriber session. All mutable state is guarded by mu;
// cond (tied to mu) wakes backpressure waiters when space frees or the
// session detaches.
type session struct {
	token      uint64
	subscriber core.SubscriberID
	addr       string               // deliver address (transport sessions)
	sink       func(*wire.Envelope) // local in-process sessions

	mu   sync.Mutex
	cond *sync.Cond
	// pending is the unsent backlog (policy-bounded by BufferBytes).
	pending      []entry
	pendingBytes int
	// ring holds sent-but-unacked deliveries: the ack flight window
	// (bounded by BufferBytes) and the resume replay source (bounded by
	// ResumeWindow entries).
	ring      []entry
	ringBytes int
	acked      uint64
	nextSeq    uint64 // next sequence to assign (starts at 1)
	detached   bool
	detachedAt int64 // Config.Now timestamp of the detach (0 while attached)
	closed     bool
	queued     bool // in the ready queue
	subs       map[core.SubscriptionID]struct{}
}

// Edge is a running edge server.
type Edge struct {
	cfg        Config
	listenAddr string

	// mu guards the subscription table, the session map and token/ID
	// assignment. Per-session buffers use the session's own lock so a slow
	// consumer never blocks matching.
	mu       sync.Mutex
	idx      index.Index
	sessions map[uint64]*session
	nextTok  uint64
	nextSub  uint64
	closed   bool

	// aggMu serializes upstream (re-)registration of the aggregated
	// subscriber; agg is the current bounding cuboid (nil before the first
	// subscription).
	aggMu      sync.Mutex
	agg        []core.Range
	upstreamID core.SubscriptionID

	ready readyQueue
	fanin faninQueue
	stop  chan struct{}
	wg    sync.WaitGroup

	bufferedBytes atomic.Int64
	attached      atomic.Int64
	staged        atomic.Int64

	fanIn             metrics.Counter // publications received from matchers
	fanOut            metrics.Counter // per-session deliveries enqueued
	sent              metrics.Counter // frames handed to the transport/sink
	droppedOldest     metrics.Counter
	slowDisconnects   metrics.Counter
	backpressureWaits metrics.Counter
	resumes           metrics.Counter
	replayed          metrics.Counter
	resumeLost        metrics.Counter
	ringEvicted       metrics.Counter // entries aged out of detached sessions' rings
	sessionsExpired   metrics.Counter // detached sessions reaped after SessionRetention
	sendFailures      metrics.Counter
	arrival           *metrics.RateMeter // fan-out λ
	service           *metrics.RateMeter // fan-out μ
}

// readyQueue is the readiness FIFO the flush workers drain — the epoll-style
// core of the session loop. Unbounded so fan-in never blocks on it.
type readyQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*session
	closed bool
}

func (rq *readyQueue) push(s *session) {
	rq.mu.Lock()
	rq.q = append(rq.q, s)
	rq.mu.Unlock()
	rq.cond.Signal()
}

func (rq *readyQueue) pop() (*session, bool) {
	rq.mu.Lock()
	defer rq.mu.Unlock()
	for len(rq.q) == 0 && !rq.closed {
		rq.cond.Wait()
	}
	if len(rq.q) == 0 {
		return nil, false
	}
	s := rq.q[0]
	rq.q = rq.q[1:]
	return s, true
}

func (rq *readyQueue) close() {
	rq.mu.Lock()
	rq.closed = true
	rq.mu.Unlock()
	rq.cond.Broadcast()
}

// faninQueue stages upstream publications between the transport handler and
// the fan-in worker. It is deliberately unbounded: the transport delivers
// one-way frames per address in order, so blocking here (a backpressured
// session) would starve the ack frames queued behind the delivery — the very
// frames that relieve the stall. Depth is exported as edge.fanin_staged.
type faninQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []*core.Message
	closed bool
}

func (fq *faninQueue) push(msg *core.Message) {
	fq.mu.Lock()
	fq.q = append(fq.q, msg)
	fq.mu.Unlock()
	fq.cond.Signal()
}

func (fq *faninQueue) pop() (*core.Message, bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for len(fq.q) == 0 && !fq.closed {
		fq.cond.Wait()
	}
	if len(fq.q) == 0 {
		return nil, false
	}
	msg := fq.q[0]
	fq.q = fq.q[1:]
	return msg, true
}

func (fq *faninQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

// New builds an edge server.
func New(cfg Config) (*Edge, error) {
	if cfg.Space == nil || cfg.Transport == nil || cfg.DispatcherAddr == "" {
		return nil, errors.New("edge: Space, Transport and DispatcherAddr are required")
	}
	if cfg.ID == 0 {
		return nil, errors.New("edge: ID is required")
	}
	if cfg.BufferBytes <= 0 {
		cfg.BufferBytes = 256 << 10
	}
	if cfg.ResumeWindow <= 0 {
		cfg.ResumeWindow = 1024
	}
	if cfg.FlushWorkers <= 0 {
		cfg.FlushWorkers = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.SessionRetention == 0 {
		cfg.SessionRetention = 10 * time.Minute
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	base := index.NewSized(cfg.IndexKind, cfg.Space, 0, cfg.IndexBuckets)
	var idx index.Index = base
	if !cfg.NoCovering {
		idx = index.NewCovering(base)
	}
	e := &Edge{
		cfg:      cfg,
		idx:      idx,
		sessions: make(map[uint64]*session),
		stop:     make(chan struct{}),
		arrival:  metrics.NewRateMeter(2*time.Second, 20),
		service:  metrics.NewRateMeter(2*time.Second, 20),
	}
	e.ready.cond = sync.NewCond(&e.ready.mu)
	e.fanin.cond = sync.NewCond(&e.fanin.mu)
	if cfg.Telemetry != nil {
		e.registerTelemetry()
	}
	return e, nil
}

func (e *Edge) registerTelemetry() {
	r := e.cfg.Telemetry.Registry
	r.Gauge("node.info", "constant 1; labels identify the node", func(int64) float64 { return 1 })
	r.Gauge("edge.sessions", "attached subscriber sessions",
		func(int64) float64 { return float64(e.attached.Load()) })
	r.Counter("edge.fanout_in", "publications received from matchers", &e.fanIn)
	r.Counter("edge.fanout_deliveries", "per-session deliveries enqueued by local re-matching", &e.fanOut)
	r.Gauge("edge.fanout_arrival_rate", "deliveries enqueued per second (λ)",
		func(now int64) float64 { return e.arrival.Rate(now) })
	r.Gauge("edge.fanout_service_rate", "deliveries flushed per second (μ)",
		func(now int64) float64 { return e.service.Rate(now) })
	r.Gauge("edge.buffered_bytes", "bytes held in session send buffers and resume rings",
		func(int64) float64 { return float64(e.bufferedBytes.Load()) })
	r.Counter("edge.drops", "slow-consumer policy actions",
		&e.droppedOldest, telemetry.L("policy", "drop-oldest"))
	r.Counter("edge.drops", "slow-consumer policy actions",
		&e.slowDisconnects, telemetry.L("policy", "disconnect"))
	r.Counter("edge.drops", "slow-consumer policy actions",
		&e.backpressureWaits, telemetry.L("policy", "backpressure"))
	r.Counter("edge.resumes", "sessions resumed from a token", &e.resumes)
	r.Counter("edge.replayed", "deliveries replayed to resumed sessions", &e.replayed)
	r.Counter("edge.resume_lost", "deliveries aged out of resume rings before reconnect", &e.resumeLost)
	r.Counter("edge.ring_evicted", "deliveries evicted from detached sessions' resume rings", &e.ringEvicted)
	r.Counter("edge.sessions_expired", "detached sessions expired after SessionRetention", &e.sessionsExpired)
	r.Gauge("edge.fanin_staged", "upstream publications staged for fan-in",
		func(int64) float64 { return float64(e.staged.Load()) })
	r.Counter("edge.send_failures", "delivery frames the transport could not send", &e.sendFailures)
}

// Start binds the edge's listener and launches the flush workers.
func (e *Edge) Start() error {
	addr, err := e.cfg.Transport.Listen(e.cfg.Addr, e.handle)
	if err != nil {
		return err
	}
	e.listenAddr = addr
	for i := 0; i < e.cfg.FlushWorkers; i++ {
		e.wg.Add(1)
		go e.flushWorker()
	}
	e.wg.Add(1)
	go e.faninWorker()
	if e.cfg.SessionRetention > 0 {
		e.wg.Add(1)
		go e.janitor()
	}
	return nil
}

// Addr returns the bound listen address.
func (e *Edge) Addr() string { return e.listenAddr }

// ID returns the edge's node identity.
func (e *Edge) ID() core.NodeID { return e.cfg.ID }

// Stop detaches every session and stops the workers. The transport is owned
// by the caller and is not closed.
func (e *Edge) Stop() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	sess := make([]*session, 0, len(e.sessions))
	for _, s := range e.sessions {
		sess = append(sess, s)
	}
	e.mu.Unlock()
	for _, s := range sess {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.cond.Broadcast()
	}
	close(e.stop)
	e.fanin.close()
	e.ready.close()
	e.wg.Wait()
}

// Sessions returns the number of attached sessions.
func (e *Edge) Sessions() int { return int(e.attached.Load()) }

// BufferedBytes returns the bytes currently held across all session buffers.
func (e *Edge) BufferedBytes() int64 { return e.bufferedBytes.Load() }

// Counter accessors for tests and benchmarks.
func (e *Edge) FanIn() int64             { return e.fanIn.Value() }
func (e *Edge) FanOut() int64            { return e.fanOut.Value() }
func (e *Edge) DroppedOldest() int64     { return e.droppedOldest.Value() }
func (e *Edge) SlowDisconnects() int64   { return e.slowDisconnects.Value() }
func (e *Edge) BackpressureWaits() int64 { return e.backpressureWaits.Value() }
func (e *Edge) Resumes() int64           { return e.resumes.Value() }
func (e *Edge) Replayed() int64          { return e.replayed.Value() }
func (e *Edge) ResumeLost() int64        { return e.resumeLost.Value() }
func (e *Edge) RingEvicted() int64       { return e.ringEvicted.Value() }
func (e *Edge) SessionsExpired() int64   { return e.sessionsExpired.Value() }

// handle is the edge's transport handler: session control frames, session
// acks, and upstream deliveries.
func (e *Edge) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindSessionHello:
		b, err := wire.DecodeSessionHello(env.Body)
		if err != nil {
			return errEnv(err)
		}
		w, err := e.hello(b, nil)
		if err != nil {
			w = &wire.SessionWelcomeBody{Err: err.Error()}
		}
		return &wire.Envelope{Kind: wire.KindSessionWelcome, From: e.cfg.ID, Body: w.Encode()}
	case wire.KindSessionSub:
		b, err := wire.DecodeSessionSub(env.Body)
		if err != nil {
			return errEnv(err)
		}
		ack := &wire.SessionSubAckBody{}
		id, err := e.subscribe(b.Token, b.Sub)
		if err != nil {
			ack.Err = err.Error()
		} else {
			ack.ID = id
		}
		return &wire.Envelope{Kind: wire.KindSessionSubAck, From: e.cfg.ID, Body: ack.Encode()}
	case wire.KindSessionUnsub:
		if b, err := wire.DecodeSessionUnsub(env.Body); err == nil {
			e.unsubscribe(b.Token, b.ID)
		}
	case wire.KindSessionAck:
		if b, err := wire.DecodeSessionAck(env.Body); err == nil {
			e.ack(b.Token, b.Seq)
		}
	case wire.KindSessionClose:
		if b, err := wire.DecodeSessionClose(env.Body); err == nil {
			e.closeSession(b.Token, false, 0)
		}
	// Deliveries are staged, never fanned out on the transport's inbound
	// goroutine: under PolicyBackpressure fan-in can stall on a slow
	// session, and the acks that relieve the stall arrive on this very
	// goroutine — blocking here would deadlock the whole edge.
	case wire.KindDeliver:
		if b, err := wire.DecodeDeliver(env.Body); err == nil {
			e.stage(b.Msg)
		}
	case wire.KindDeliverBatch:
		if b, err := wire.DecodeDeliverBatch(env.Body); err == nil {
			for i := range b.Deliveries {
				e.stage(b.Deliveries[i].Msg)
			}
		}
	}
	return nil
}

// stage enqueues one upstream publication for the fan-in worker.
func (e *Edge) stage(msg *core.Message) {
	if msg == nil {
		return
	}
	e.staged.Add(1)
	e.fanin.push(msg)
}

// faninWorker drains the staging queue in order. It is the one goroutine a
// backpressured session may stall — control frames keep flowing regardless.
func (e *Edge) faninWorker() {
	defer e.wg.Done()
	for {
		msg, ok := e.fanin.pop()
		if !ok {
			return
		}
		e.staged.Add(-1)
		e.fanOutMsg(msg)
	}
}

func errEnv(err error) *wire.Envelope {
	return &wire.Envelope{Kind: wire.KindError, Body: (&wire.ErrorBody{Text: err.Error()}).Encode()}
}

// AttachLocal opens or resumes an in-process session delivering frames
// through sink instead of the transport — how benchmarks host 100k sessions
// on one edge without 100k transport endpoints. The handshake, buffers,
// policies and resume machinery are identical to transport sessions (frames
// are still wire-encoded); only the final write is a function call. The sink
// must be fast and non-blocking: model slow consumers by withholding acks.
func (e *Edge) AttachLocal(hello *wire.SessionHelloBody, sink func(*wire.Envelope)) (*wire.SessionWelcomeBody, error) {
	if sink == nil {
		return nil, errors.New("edge: AttachLocal requires a sink")
	}
	return e.hello(hello, sink)
}

// Deliver injects one upstream publication exactly as a KindDeliver frame
// would (bench/chaos hook: drives fan-in without a transport endpoint, so
// backpressure stalls the caller directly).
func (e *Edge) Deliver(msg *core.Message) { e.fanOutMsg(msg) }

// Subscribe registers one session subscription (the KindSessionSub path).
func (e *Edge) Subscribe(token uint64, sub *core.Subscription) (core.SubscriptionID, error) {
	return e.subscribe(token, sub)
}

// Ack advances a session's cumulative ack (the KindSessionAck path).
func (e *Edge) Ack(token, seq uint64) { e.ack(token, seq) }

// hello opens (Token == 0) or resumes a session.
func (e *Edge) hello(b *wire.SessionHelloBody, sink func(*wire.Envelope)) (*wire.SessionWelcomeBody, error) {
	if b.Token == 0 {
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil, errors.New("edge: stopped")
		}
		e.nextTok++
		s := &session{
			token:      e.nextTok,
			subscriber: b.Subscriber,
			addr:       b.DeliverAddr,
			sink:       sink,
			nextSeq:    1,
			subs:       make(map[core.SubscriptionID]struct{}),
		}
		s.cond = sync.NewCond(&s.mu)
		e.sessions[s.token] = s
		e.mu.Unlock()
		e.attached.Add(1)
		return &wire.SessionWelcomeBody{Token: s.token, NextSeq: 1}, nil
	}

	e.mu.Lock()
	s, ok := e.sessions[b.Token]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("edge: unknown session token %d", b.Token)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("edge: session closed")
	}
	wasDetached := s.detached
	s.addr = b.DeliverAddr
	s.sink = sink
	s.detached = false
	s.detachedAt = 0
	if b.LastSeq > s.acked {
		s.acked = b.LastSeq
	}
	// Everything the subscriber confirms leaves the ring; what remains
	// (newer than LastSeq) is replayed by moving it back to the front of
	// the unsent backlog. Sequences between LastSeq and the oldest retained
	// entry aged out of the ring — they are gone, and the welcome says so.
	e.trimAckedLocked(s)
	var lost uint64
	firstRetained := s.nextSeq
	if len(s.ring) > 0 {
		firstRetained = s.ring[0].seq
	} else if len(s.pending) > 0 && s.pending[0].seq < firstRetained {
		firstRetained = s.pending[0].seq
	}
	if firstRetained > b.LastSeq+1 {
		lost = firstRetained - b.LastSeq - 1
	}
	replayed := len(s.ring)
	if replayed > 0 {
		merged := make([]entry, 0, len(s.ring)+len(s.pending))
		merged = append(merged, s.ring...)
		merged = append(merged, s.pending...)
		s.pending = merged
		s.pendingBytes += s.ringBytes
		s.ring = nil
		s.ringBytes = 0
	}
	welcome := &wire.SessionWelcomeBody{
		Token:   s.token,
		Resumed: true,
		NextSeq: s.nextSeq,
		Lost:    lost,
	}
	s.mu.Unlock()
	s.cond.Broadcast()
	if wasDetached {
		e.attached.Add(1)
	}
	e.resumes.Add(1)
	e.replayed.Add(int64(replayed))
	e.resumeLost.Add(int64(lost))
	e.enqueueReady(s)
	return welcome, nil
}

// subscribe registers one session subscription: it enters the per-edge
// table and widens the aggregated upstream subscriber when it falls outside
// the current bounding cuboid.
func (e *Edge) subscribe(token uint64, sub *core.Subscription) (core.SubscriptionID, error) {
	if sub == nil {
		return 0, errors.New("edge: nil subscription")
	}
	if err := sub.Validate(e.cfg.Space); err != nil {
		return 0, err
	}
	e.mu.Lock()
	s, ok := e.sessions[token]
	if !ok || e.closed {
		e.mu.Unlock()
		return 0, fmt.Errorf("edge: unknown session token %d", token)
	}
	e.mu.Unlock()

	// Widen the upstream aggregate BEFORE exposing the subscription: once
	// the sub-ack returns, matching publications are guaranteed to reach
	// this edge.
	if err := e.widen(sub.Predicates); err != nil {
		return 0, err
	}

	e.mu.Lock()
	e.nextSub++
	id := core.SubscriptionID(uint64(e.cfg.ID)<<40 | e.nextSub)
	stored := core.NewSubscription(core.SubscriberID(token), sub.Predicates)
	stored.ID = id
	e.idx.Add(stored)
	e.mu.Unlock()
	s.mu.Lock()
	if s.closed {
		// The session closed (or expired) while registering: its
		// subscriptions were already torn down, so this one must not
		// survive it in the table.
		s.mu.Unlock()
		e.mu.Lock()
		e.idx.Remove(id)
		e.mu.Unlock()
		return 0, fmt.Errorf("edge: unknown session token %d", token)
	}
	s.subs[id] = struct{}{}
	s.mu.Unlock()
	return id, nil
}

// unsubscribe removes one session subscription from the table. The upstream
// aggregate is widening-only: it is not narrowed here, so the edge may keep
// receiving (and discarding) traffic no local session wants until it
// re-registers — the same trade SIENA-style aggregation makes.
func (e *Edge) unsubscribe(token uint64, id core.SubscriptionID) {
	e.mu.Lock()
	s, ok := e.sessions[token]
	if ok {
		e.idx.Remove(id)
	}
	e.mu.Unlock()
	if ok {
		s.mu.Lock()
		delete(s.subs, id)
		s.mu.Unlock()
	}
}

// widen grows the aggregated upstream subscription to cover preds,
// registering the new bounding cuboid before dropping the old one so there
// is no coverage gap.
func (e *Edge) widen(preds []core.Range) error {
	e.aggMu.Lock()
	defer e.aggMu.Unlock()
	if e.agg != nil {
		covered := true
		for i, p := range preds {
			if p.Low < e.agg[i].Low || p.High > e.agg[i].High {
				covered = false
				break
			}
		}
		if covered {
			return nil
		}
	}
	next := make([]core.Range, len(preds))
	copy(next, preds)
	if e.agg != nil {
		for i := range next {
			if e.agg[i].Low < next[i].Low {
				next[i].Low = e.agg[i].Low
			}
			if e.agg[i].High > next[i].High {
				next[i].High = e.agg[i].High
			}
		}
	}
	agg := core.NewSubscription(core.SubscriberID(subscriberBit|uint64(e.cfg.ID)), next)
	body := (&wire.SubscribeBody{Sub: agg, DeliverAddr: e.listenAddr}).Encode()
	resp, err := e.cfg.Transport.Request(e.cfg.DispatcherAddr,
		&wire.Envelope{Kind: wire.KindSubscribe, From: e.cfg.ID, Body: body}, e.cfg.RequestTimeout)
	if err != nil {
		return fmt.Errorf("edge: upstream subscribe: %w", err)
	}
	if resp.Kind != wire.KindSubscribeAck {
		if eb, derr := wire.DecodeError(resp.Body); derr == nil {
			return fmt.Errorf("edge: upstream subscribe rejected: %s", eb.Text)
		}
		return fmt.Errorf("edge: unexpected upstream response %v", resp.Kind)
	}
	ack, err := wire.DecodeSubscribeAck(resp.Body)
	if err != nil {
		return err
	}
	old := e.upstreamID
	e.upstreamID, e.agg = ack.ID, next
	if old != 0 {
		// Replaced cuboid: drop the narrower registration. Best-effort —
		// a stale extra registration only costs duplicate deliveries,
		// which local re-matching and client dedup absorb.
		ub := (&wire.UnsubscribeBody{ID: old}).Encode()
		_ = e.cfg.Transport.Send(e.cfg.DispatcherAddr,
			&wire.Envelope{Kind: wire.KindUnsubscribe, From: e.cfg.ID, Body: ub})
	}
	return nil
}

// ack advances a session's cumulative ack, freeing ring space (and with it
// the flight window that gates flushing).
func (e *Edge) ack(token uint64, seq uint64) {
	e.mu.Lock()
	s, ok := e.sessions[token]
	e.mu.Unlock()
	if !ok {
		return
	}
	s.mu.Lock()
	if seq > s.acked {
		s.acked = seq
		e.trimAckedLocked(s)
	}
	flushable := e.flushableLocked(s)
	s.mu.Unlock()
	s.cond.Broadcast()
	if flushable {
		e.enqueueReady(s)
	}
}

// trimAckedLocked drops acked entries from the front of the ring. Caller
// holds s.mu.
func (e *Edge) trimAckedLocked(s *session) {
	i := 0
	for i < len(s.ring) && s.ring[i].seq <= s.acked {
		s.ringBytes -= s.ring[i].size
		e.bufferedBytes.Add(-int64(s.ring[i].size))
		i++
	}
	if i > 0 {
		s.ring = s.ring[i:]
	}
}

// Detach simulates a connection loss for the session with the given token
// (chaos/bench hook): buffered deliveries move to the resume ring and the
// session stops being flushed until it resumes.
func (e *Edge) Detach(token uint64) bool {
	e.mu.Lock()
	s, ok := e.sessions[token]
	e.mu.Unlock()
	if !ok {
		return false
	}
	e.detach(s)
	return true
}

func (e *Edge) detach(s *session) {
	s.mu.Lock()
	if s.detached || s.closed {
		s.mu.Unlock()
		return
	}
	s.detached = true
	s.detachedAt = e.cfg.Now()
	// Unsent backlog joins the resume ring: it is exactly the "missed while
	// away" set a resume replays.
	s.ring = append(s.ring, s.pending...)
	s.ringBytes += s.pendingBytes
	s.pending = nil
	s.pendingBytes = 0
	e.trimRingLocked(s)
	s.mu.Unlock()
	s.cond.Broadcast()
	e.attached.Add(-1)
}

// trimRingLocked enforces the ResumeWindow bound. Only called while the
// session is detached (on detach and on detached fan-in): while attached the
// flight window stops flushing at ResumeWindow entries instead, so nothing
// sent-but-unacked is ever evicted. Caller holds s.mu.
func (e *Edge) trimRingLocked(s *session) {
	for len(s.ring) > e.cfg.ResumeWindow {
		e.bufferedBytes.Add(-int64(s.ring[0].size))
		s.ringBytes -= s.ring[0].size
		s.ring = s.ring[1:]
		e.ringEvicted.Add(1)
	}
}

// CloseSession ends a session for good (the KindSessionClose path): its
// buffers, resume ring and subscriptions are freed and the token can no
// longer be resumed. Reports whether a live session was closed.
func (e *Edge) CloseSession(token uint64) bool { return e.closeSession(token, false, 0) }

// closeSession tears one session down. With expireOnly set the close only
// proceeds if the session is detached and has been since expireBefore or
// earlier — the expiry path, re-checked under the session lock so a
// concurrent resume wins the race.
func (e *Edge) closeSession(token uint64, expireOnly bool, expireBefore int64) bool {
	e.mu.Lock()
	s, ok := e.sessions[token]
	e.mu.Unlock()
	if !ok {
		return false
	}
	s.mu.Lock()
	if s.closed || (expireOnly && (!s.detached || s.detachedAt > expireBefore)) {
		s.mu.Unlock()
		return false
	}
	s.closed = true
	wasAttached := !s.detached
	freed := s.pendingBytes + s.ringBytes
	ids := make([]core.SubscriptionID, 0, len(s.subs))
	for id := range s.subs {
		ids = append(ids, id)
	}
	s.pending, s.pendingBytes = nil, 0
	s.ring, s.ringBytes = nil, 0
	s.mu.Unlock()
	s.cond.Broadcast() // free any backpressure waiter
	e.mu.Lock()
	delete(e.sessions, token)
	for _, id := range ids {
		e.idx.Remove(id)
	}
	e.mu.Unlock()
	e.bufferedBytes.Add(-int64(freed))
	if wasAttached {
		e.attached.Add(-1)
	}
	return true
}

// janitor periodically expires sessions that stayed detached longer than
// SessionRetention, so abandoned tokens do not pin their rings and
// subscriptions forever.
func (e *Edge) janitor() {
	defer e.wg.Done()
	interval := e.cfg.SessionRetention / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-ticker.C:
			e.sweepExpired(e.cfg.Now())
		}
	}
}

// sweepExpired closes every session detached since before now-SessionRetention
// and returns how many it reaped.
func (e *Edge) sweepExpired(now int64) int {
	cutoff := now - int64(e.cfg.SessionRetention)
	e.mu.Lock()
	var expired []uint64
	for tok, s := range e.sessions {
		s.mu.Lock()
		if s.detached && !s.closed && s.detachedAt <= cutoff {
			expired = append(expired, tok)
		}
		s.mu.Unlock()
	}
	e.mu.Unlock()
	n := 0
	for _, tok := range expired {
		if e.closeSession(tok, true, cutoff) {
			e.sessionsExpired.Add(1)
			n++
		}
	}
	return n
}

// fanOutMsg re-matches one upstream publication against the per-edge table
// and appends the encoded delivery to every matching session's buffer.
func (e *Edge) fanOutMsg(msg *core.Message) {
	if msg == nil {
		return
	}
	e.fanIn.Add(1)
	type target struct {
		s   *session
		ids []core.SubscriptionID
	}
	var targets []target
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	matched, _, _ := index.Match(e.idx, msg, nil, nil)
	if len(matched) > 0 {
		perSess := make(map[uint64]int, 8)
		for _, sub := range matched {
			tok := uint64(sub.Subscriber)
			i, ok := perSess[tok]
			if !ok {
				s := e.sessions[tok]
				if s == nil {
					continue
				}
				perSess[tok] = len(targets)
				targets = append(targets, target{s: s})
				i = len(targets) - 1
			}
			targets[i].ids = append(targets[i].ids, sub.ID)
		}
	}
	e.mu.Unlock()
	now := e.cfg.Now()
	for _, t := range targets {
		e.append(t.s, msg, t.ids, now)
	}
}

// append applies the slow-consumer policy and enqueues one delivery on a
// session, stamping its sequence. Under PolicyBackpressure a full buffer
// blocks the caller (the fan-in path) until the consumer acks — that stall
// is the backpressure, propagating upstream like a full TCP window.
func (e *Edge) append(s *session, msg *core.Message, ids []core.SubscriptionID, now int64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	// The encoded size is known only after encoding, and the sequence must
	// be assigned under the lock; encode first with the next sequence.
	body := (&wire.EdgeDeliverBody{Seq: s.nextSeq, Msg: msg, SubIDs: ids}).Encode()
	size := len(body)
	if !s.detached {
		switch e.cfg.Policy {
		case PolicyBackpressure:
			for !s.detached && !s.closed && s.pendingBytes+size > e.cfg.BufferBytes && s.pendingBytes > 0 {
				e.backpressureWaits.Add(1)
				s.cond.Wait()
			}
		case PolicyDropOldest:
			for s.pendingBytes+size > e.cfg.BufferBytes && len(s.pending) > 0 {
				old := s.pending[0]
				s.pending = s.pending[1:]
				s.pendingBytes -= old.size
				e.bufferedBytes.Add(-int64(old.size))
				e.droppedOldest.Add(1)
			}
		case PolicyDisconnect:
			if s.pendingBytes+size > e.cfg.BufferBytes && s.pendingBytes > 0 {
				s.mu.Unlock()
				e.slowDisconnects.Add(1)
				e.detach(s)
				s.mu.Lock()
			}
		}
	}
	// The session may have closed while this goroutine waited above (edge
	// stop, a session-close frame, retention expiry): its buffers are gone,
	// so the delivery must not be accounted against them.
	if s.closed {
		s.mu.Unlock()
		return
	}
	ent := entry{seq: s.nextSeq, size: size, body: body}
	s.nextSeq++
	if s.detached {
		// No consumer: straight to the resume ring.
		s.ring = append(s.ring, ent)
		s.ringBytes += size
		e.bufferedBytes.Add(int64(size))
		e.trimRingLocked(s)
		s.mu.Unlock()
	} else {
		s.pending = append(s.pending, ent)
		s.pendingBytes += size
		e.bufferedBytes.Add(int64(size))
		s.mu.Unlock()
		e.enqueueReady(s)
	}
	e.fanOut.Add(1)
	e.arrival.Mark(now, 1)
}

// flushableLocked reports whether a flush worker has work for s: attached,
// backlog present, flight window open. The window is bounded both in bytes
// (BufferBytes) and in entries (ResumeWindow) — without the entry bound,
// deliveries smaller than BufferBytes/ResumeWindow would never close it and
// a consumer that stopped acking would keep being sent to forever. Caller
// holds s.mu.
func (e *Edge) flushableLocked(s *session) bool {
	return !s.detached && !s.closed && len(s.pending) > 0 &&
		s.ringBytes < e.cfg.BufferBytes && len(s.ring) < e.cfg.ResumeWindow
}

// enqueueReady marks a session ready for the worker pool (at most one
// pending readiness entry per session).
func (e *Edge) enqueueReady(s *session) {
	s.mu.Lock()
	if s.queued || !e.flushableLocked(s) {
		s.mu.Unlock()
		return
	}
	s.queued = true
	s.mu.Unlock()
	e.ready.push(s)
}

func (e *Edge) flushWorker() {
	defer e.wg.Done()
	for {
		s, ok := e.ready.pop()
		if !ok {
			return
		}
		e.flush(s)
	}
}

// flush drains one ready session: pending entries move to the ring (sent,
// awaiting ack) and their frames go out, until the flight window closes. On
// a send failure the session detaches — its buffered traffic waits in the
// resume ring.
func (e *Edge) flush(s *session) {
	for {
		s.mu.Lock()
		if !e.flushableLocked(s) {
			s.queued = false
			s.mu.Unlock()
			return
		}
		ent := s.pending[0]
		s.pending = s.pending[1:]
		s.pendingBytes -= ent.size
		s.ring = append(s.ring, ent)
		s.ringBytes += ent.size
		addr, sink := s.addr, s.sink
		s.mu.Unlock()
		s.cond.Broadcast() // pending shrank: wake backpressure waiters

		env := &wire.Envelope{Kind: wire.KindEdgeDeliver, From: e.cfg.ID, Body: ent.body}
		if sink != nil {
			sink(env)
		} else if err := e.cfg.Transport.Send(addr, env); err != nil {
			e.sendFailures.Add(1)
			s.mu.Lock()
			s.queued = false
			s.mu.Unlock()
			e.detach(s)
			return
		}
		e.sent.Add(1)
		e.service.Mark(e.cfg.Now(), 1)
	}
}
