package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"time"

	"bluedove/internal/store"
)

// ErrDiskFault marks every error injected by a fault-injecting FS;
// errors.Is-match it to distinguish injected faults from real ones.
var ErrDiskFault = errors.New("chaos: injected disk fault")

// ErrNoSpace is the injected ENOSPC analogue, returned once a labeled disk's
// cumulative written bytes pass DiskFaults.ENOSPCAfter.
var ErrNoSpace = fmt.Errorf("%w: no space left on device", ErrDiskFault)

// DiskFaults are the probabilistic storage-fault rules of one labeled disk
// (typically one node's data directory).
type DiskFaults struct {
	// WriteErr is the probability a file write fails mid-way: the first
	// half of the buffer lands, then an injected EIO — a torn write.
	WriteErr float64
	// SyncErr is the probability an fsync (file or directory) fails. The
	// data's durability is then undefined, exactly like a real fsync error.
	SyncErr float64
	// ENOSPCAfter fails every write once the disk's cumulative written
	// bytes exceed it (0 = unlimited space).
	ENOSPCAfter int64
	// OpDelay is added latency per filesystem operation (a slow device).
	OpDelay time.Duration
	// TornRename is the probability a rename fails after leaking a
	// half-written destination file — the crash-mid-rename signature
	// recovery must tolerate.
	TornRename float64
}

func (f DiskFaults) active() bool {
	return f.WriteErr > 0 || f.SyncErr > 0 || f.ENOSPCAfter > 0 || f.OpDelay > 0 || f.TornRename > 0
}

// diskOp names one fault-relevant filesystem operation.
type diskOp uint8

const (
	opWrite diskOp = iota
	opSync
	opRename
)

func (o diskOp) String() string {
	switch o {
	case opWrite:
		return "write"
	case opSync:
		return "sync"
	default:
		return "rename"
	}
}

// diskState is the per-label disk fault stream: one RNG per path, so the
// verdict for the nth operation on a file is a pure function of
// (seed, label, path, n) — independent of interleaving across files.
type diskState struct {
	faults  DiskFaults
	written int64 // cumulative bytes for the ENOSPC budget
	paths   map[string]*rand.Rand
	trace   []string
}

// SetDiskFaults installs (or, with a zero DiskFaults, clears) the storage
// fault rules of the labeled disk. Wrap a store.FS with DiskFS to subject
// it to these rules.
func (c *Controller) SetDiskFaults(label string, f DiskFaults) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disks == nil {
		c.disks = make(map[string]*diskState)
	}
	ds := c.disks[label]
	if ds == nil {
		ds = &diskState{paths: make(map[string]*rand.Rand)}
		c.disks[label] = ds
	}
	ds.faults = f
	if f.active() {
		c.eventLocked(fmt.Sprintf("disk %s werr=%.2f serr=%.2f enospc=%d delay=%v torn=%.2f",
			label, f.WriteErr, f.SyncErr, f.ENOSPCAfter, f.OpDelay, f.TornRename))
	} else {
		c.eventLocked("disk-clear " + label)
	}
}

// diskSeed derives the per-path RNG seed from the controller seed, the disk
// label and the file path.
func (c *Controller) diskSeed(label, path string) int64 {
	h := fnv.New64a()
	h.Write([]byte(label))
	h.Write([]byte{0})
	h.Write([]byte(path))
	return c.seed ^ int64(h.Sum64())
}

// diskPlan computes the fault verdict for one operation on a labeled disk:
// added latency and the injected error (nil to proceed). n is the write
// size (for the ENOSPC budget; 0 otherwise).
func (c *Controller) diskPlan(label, path string, op diskOp, n int) (time.Duration, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.disks == nil {
		return 0, nil
	}
	ds := c.disks[label]
	if ds == nil || !ds.faults.active() {
		return 0, nil
	}
	f := ds.faults
	rng := ds.paths[path]
	if rng == nil {
		rng = rand.New(rand.NewSource(c.diskSeed(label, path)))
		ds.paths[path] = rng
	}
	// Fixed draw order (write, sync, rename) keeps each path's stream
	// stable across rule changes that only tweak probabilities.
	pWrite := rng.Float64()
	pSync := rng.Float64()
	pRename := rng.Float64()
	var err error
	switch op {
	case opWrite:
		if f.ENOSPCAfter > 0 && ds.written+int64(n) > f.ENOSPCAfter {
			err = ErrNoSpace
		} else if pWrite < f.WriteErr {
			err = fmt.Errorf("%w: write %s", ErrDiskFault, path)
		} else {
			ds.written += int64(n)
		}
	case opSync:
		if pSync < f.SyncErr {
			err = fmt.Errorf("%w: sync %s", ErrDiskFault, path)
		}
	case opRename:
		if pRename < f.TornRename {
			err = fmt.Errorf("%w: torn rename %s", ErrDiskFault, path)
		}
	}
	if err != nil {
		ds.trace = append(ds.trace, fmt.Sprintf("%s %s %s", op, path, err))
	}
	return f.OpDelay, err
}

// DiskTrace returns the ordered log of faults injected on the labeled disk.
func (c *Controller) DiskTrace(label string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disks == nil || c.disks[label] == nil {
		return nil
	}
	out := make([]string, len(c.disks[label].trace))
	copy(out, c.disks[label].trace)
	return out
}

// DiskFS wraps a store.FS (nil: the OS passthrough) so every operation is
// subject to the labeled disk's fault rules. Verdicts are deterministic per
// (seed, label, path, op-sequence); a closed controller injects nothing.
func (c *Controller) DiskFS(label string, inner store.FS) store.FS {
	if inner == nil {
		inner = store.OS{}
	}
	return &faultFS{ctrl: c, label: label, inner: inner}
}

type faultFS struct {
	ctrl  *Controller
	label string
	inner store.FS
}

// pause applies a plan's injected latency (outside the controller lock).
func pause(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

func (fs *faultFS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	f, err := fs.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, path: name, f: f}, nil
}

func (fs *faultFS) Rename(oldpath, newpath string) error {
	d, err := fs.ctrl.diskPlan(fs.label, newpath, opRename, 0)
	pause(d)
	if err != nil {
		// Torn rename: the destination appears with only a prefix of the
		// source — the on-disk state a crash between the data blocks and
		// the metadata commit leaves behind. The source survives, and the
		// caller sees a failure.
		if data, rerr := fs.inner.ReadFile(oldpath); rerr == nil {
			if f, oerr := fs.inner.OpenFile(newpath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644); oerr == nil {
				_, _ = f.Write(data[:len(data)/2])
				_ = f.Close()
			}
		}
		return err
	}
	return fs.inner.Rename(oldpath, newpath)
}

func (fs *faultFS) Remove(name string) error { return fs.inner.Remove(name) }

func (fs *faultFS) ReadDir(name string) ([]os.DirEntry, error) { return fs.inner.ReadDir(name) }

func (fs *faultFS) ReadFile(name string) ([]byte, error) { return fs.inner.ReadFile(name) }

func (fs *faultFS) MkdirAll(path string, perm os.FileMode) error {
	return fs.inner.MkdirAll(path, perm)
}

func (fs *faultFS) Truncate(name string, size int64) error { return fs.inner.Truncate(name, size) }

func (fs *faultFS) SyncDir(path string) error {
	d, err := fs.ctrl.diskPlan(fs.label, path, opSync, 0)
	pause(d)
	if err != nil {
		return err
	}
	return fs.inner.SyncDir(path)
}

// faultFile subjects one open file's writes and fsyncs to the disk's fault
// rules.
type faultFile struct {
	fs   *faultFS
	path string
	f    store.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	d, err := f.fs.ctrl.diskPlan(f.fs.label, f.path, opWrite, len(p))
	pause(d)
	if err != nil {
		// Torn write: half the buffer lands before the fault, so repair
		// paths must cope with trailing garbage past the last good byte.
		n, _ := f.f.Write(p[:len(p)/2])
		return n, err
	}
	return f.f.Write(p)
}

func (f *faultFile) Sync() error {
	d, err := f.fs.ctrl.diskPlan(f.fs.label, f.path, opSync, 0)
	pause(d)
	if err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *faultFile) Close() error { return f.f.Close() }
