package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bluedove/internal/store"
)

// Two controllers with the same seed inject the identical fault schedule on
// the same operation sequence — the disk verdict stream is a pure function
// of (seed, label, path, op sequence).
func TestDiskFaultDeterminism(t *testing.T) {
	dir := t.TempDir()
	// The verdict stream is keyed by path, so both runs must touch the same
	// file (as a restarted node reopening its data dir would).
	run := func(seed int64) []string {
		c := NewController(seed)
		defer c.Close()
		c.SetDiskFaults("node", DiskFaults{WriteErr: 0.3, SyncErr: 0.3, TornRename: 0.3})
		fs := c.DiskFS("node", store.OS{})
		f, err := fs.OpenFile(filepath.Join(dir, "a.wal"), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for i := 0; i < 50; i++ {
			_, werr := f.Write([]byte("0123456789"))
			serr := f.Sync()
			got = append(got, fmt.Sprintf("w=%v s=%v", errors.Is(werr, ErrDiskFault), errors.Is(serr, ErrDiskFault)))
		}
		_ = f.Close()
		return got
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different disk fault schedules")
	}
	if reflect.DeepEqual(a, run(43)) {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
	var faults int
	for _, v := range a {
		if v != "w=false s=false" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("0.3/0.3 probabilities injected nothing over 50 ops")
	}
}

// A torn rename leaves a half-written snapshot that recovery must skip in
// favor of the WAL chain — no records lost, no corruption surfaced.
func TestTornRenameSkippedByRecovery(t *testing.T) {
	c := NewController(7)
	defer c.Close()
	dir := t.TempDir()
	s, err := store.Open(store.Options{Dir: dir, FS: c.DiskFS("node", nil)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Append(1, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.SetDiskFaults("node", DiskFaults{TornRename: 1})
	if err := s.Snapshot([]byte("full-state")); err == nil {
		t.Fatal("snapshot with TornRename=1 unexpectedly succeeded")
	} else if !errors.Is(err, ErrDiskFault) {
		t.Fatalf("snapshot error = %v, want injected fault", err)
	}
	c.SetDiskFaults("node", DiskFaults{})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var records int
	var snap []byte
	rec, err := store.Recover(dir,
		func(p []byte) error { snap = append([]byte(nil), p...); return nil },
		func(uint8, []byte) error { records++; return nil })
	if err != nil {
		t.Fatalf("recovery after torn rename: %v", err)
	}
	if rec.SnapshotLoaded {
		t.Fatalf("recovery trusted the torn snapshot %q", snap)
	}
	if records != 8 {
		t.Fatalf("recovered %d records, want all 8 from the WAL", records)
	}
}

// ENOSPC kicks in once cumulative writes pass the budget; with
// DegradeToMemory the store degrades and accounts instead of erroring.
func TestENOSPCDegradesStore(t *testing.T) {
	c := NewController(11)
	defer c.Close()
	c.SetDiskFaults("node", DiskFaults{ENOSPCAfter: 256})
	dir := t.TempDir()
	s, err := store.Open(store.Options{
		Dir:    dir,
		Fsync:  store.FsyncAlways,
		FS:     c.DiskFS("node", nil),
		Policy: store.DegradeToMemory,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Append(1, make([]byte, 32)); err != nil {
			t.Fatalf("append %d under DegradeToMemory: %v", i, err)
		}
	}
	if got := s.Health(); got != store.Degraded {
		t.Fatalf("health = %v, want degraded after disk filled", got)
	}
	if s.DroppedAppends.Value() == 0 {
		t.Fatal("no dropped-append accounting after ENOSPC degrade")
	}
	if trace := c.DiskTrace("node"); len(trace) == 0 {
		t.Fatal("no injected faults recorded in the disk trace")
	}
}

// The Scenario DSL applies DiskFaults steps at their offsets.
func TestScenarioDiskFaultsStep(t *testing.T) {
	c := NewController(3)
	defer c.Close()
	run := NewScenario().
		At(0).DiskFaults("node", DiskFaults{SyncErr: 1}).
		At(10*time.Millisecond).DiskFaults("node", DiskFaults{}).
		Run(c)
	run.Wait()
	events := c.Events()
	var saw, cleared bool
	for _, e := range events {
		if e == "disk-clear node" {
			cleared = true
		} else if len(e) > 5 && e[:5] == "disk " {
			saw = true
		}
	}
	if !saw || !cleared {
		t.Fatalf("events %v missing disk install/clear", events)
	}
}

// A closed controller injects nothing: the wrapped FS becomes a passthrough.
func TestClosedControllerInjectsNothing(t *testing.T) {
	c := NewController(5)
	c.SetDiskFaults("node", DiskFaults{WriteErr: 1, SyncErr: 1})
	fs := c.DiskFS("node", nil)
	c.Close()
	dir := t.TempDir()
	f, err := fs.OpenFile(filepath.Join(dir, "x.wal"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatalf("write after Close: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after Close: %v", err)
	}
	_ = f.Close()
}
