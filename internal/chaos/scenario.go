package chaos

import (
	"sort"
	"sync"
	"time"
)

// Scenario is an ordered schedule of timed fault steps, built with the
// At(...) DSL and executed against a Controller by Run:
//
//	sc := chaos.NewScenario().
//		At(2*time.Second).Partition(a, b).
//		At(3*time.Second).Kill(matcher2).
//		At(5*time.Second).Heal()
//	run := sc.Run(ctrl)
//	defer run.Stop()
//
// Step offsets are relative to the Run call. Steps sharing an offset apply
// in the order they were declared.
type Scenario struct {
	steps []timedStep
}

type timedStep struct {
	at    time.Duration
	idx   int // declaration order, for stable sorting
	apply func(*Controller)
}

// NewScenario creates an empty scenario.
func NewScenario() *Scenario { return &Scenario{} }

// At starts a step at the given offset from scenario start.
func (s *Scenario) At(d time.Duration) *Step { return &Step{s: s, at: d} }

// Step builds one or more fault actions at a fixed offset. Every action
// method returns the Step so same-time actions chain; At starts the next
// offset.
type Step struct {
	s  *Scenario
	at time.Duration
}

// At starts a new step at another offset (chaining convenience).
func (st *Step) At(d time.Duration) *Step { return st.s.At(d) }

// Run executes the whole scenario this step belongs to (chaining
// convenience, so a fluent build ends directly in Run).
func (st *Step) Run(ctrl *Controller) *Run { return st.s.Run(ctrl) }

func (st *Step) add(apply func(*Controller)) *Step {
	st.s.steps = append(st.s.steps, timedStep{at: st.at, idx: len(st.s.steps), apply: apply})
	return st
}

// Partition cuts both directions between a and b.
func (st *Step) Partition(a, b string) *Step {
	return st.add(func(c *Controller) { c.PartitionBoth(a, b, true) })
}

// PartitionOneWay cuts only the directed link from→to (an asymmetric
// failure: from's frames are lost, to's still arrive).
func (st *Step) PartitionOneWay(from, to string) *Step {
	return st.add(func(c *Controller) { c.Partition(from, to, true) })
}

// Isolate cuts every link to and from addr.
func (st *Step) Isolate(addr string) *Step {
	return st.add(func(c *Controller) { c.Isolate(addr, true) })
}

// Heal clears every partition and isolation.
func (st *Step) Heal() *Step {
	return st.add(func(c *Controller) { c.Heal() })
}

// Kill blackholes addr (crash).
func (st *Step) Kill(addr string) *Step {
	return st.add(func(c *Controller) { c.Kill(addr) })
}

// Restart revives a killed addr.
func (st *Step) Restart(addr string) *Step {
	return st.add(func(c *Controller) { c.Restart(addr) })
}

// Slow adds extra latency to every frame to or from addr.
func (st *Step) Slow(addr string, extra time.Duration) *Step {
	return st.add(func(c *Controller) { c.SetSlow(addr, extra) })
}

// Faults installs probabilistic fault rules on the directed link from→to.
func (st *Step) Faults(from, to string, f LinkFaults) *Step {
	return st.add(func(c *Controller) { c.SetFaults(from, to, f) })
}

// DiskFaults installs storage fault rules on the labeled disk (see
// Controller.SetDiskFaults and DiskFS).
func (st *Step) DiskFaults(label string, f DiskFaults) *Step {
	return st.add(func(c *Controller) { c.SetDiskFaults(label, f) })
}

// Do runs an arbitrary callback (e.g. a real process kill through the
// cluster API) at the step's offset.
func (st *Step) Do(fn func()) *Step {
	return st.add(func(*Controller) { fn() })
}

// Run executes the scenario against ctrl on a background goroutine and
// returns a handle to wait for completion or abort early.
func (s *Scenario) Run(ctrl *Controller) *Run {
	steps := make([]timedStep, len(s.steps))
	copy(steps, s.steps)
	sort.SliceStable(steps, func(i, j int) bool {
		if steps[i].at != steps[j].at {
			return steps[i].at < steps[j].at
		}
		return steps[i].idx < steps[j].idx
	})
	r := &Run{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(r.done)
		start := time.Now()
		for _, st := range steps {
			wait := st.at - time.Since(start)
			if wait > 0 {
				select {
				case <-r.stop:
					return
				case <-time.After(wait):
				}
			} else {
				select {
				case <-r.stop:
					return
				default:
				}
			}
			st.apply(ctrl)
		}
	}()
	return r
}

// Run is a handle on one executing scenario.
type Run struct {
	stop chan struct{}
	once sync.Once
	done chan struct{}
}

// Wait blocks until every step has been applied (or Stop was called).
func (r *Run) Wait() { <-r.done }

// Stop aborts any steps not yet applied.
func (r *Run) Stop() {
	r.once.Do(func() { close(r.stop) })
	<-r.done
}
