// Package chaos is BlueDove's deterministic fault-injection subsystem: a
// seeded Controller applies scheduled fault rules — per-link drop, delay and
// duplicate probabilities, symmetric and asymmetric partitions, node
// blackhole (crash), crash-restart, and slow nodes — to any
// transport.Transport via a wrapping endpoint (see Wrap). A small Scenario
// type sequences timed fault steps (At(2s).Partition(a, b), At(5s).Heal()),
// and an Auditor checks the delivery-accounting invariants end-to-end: every
// acked publication reaches every matching subscriber at least once, and no
// subscriber receives a publication it did not match.
//
// Determinism: every probabilistic verdict (drop / duplicate / delay pick)
// on a link is drawn from a per-link RNG seeded from (Controller seed, from,
// to), so the verdict for the nth message on a link is a pure function of
// the seed — independent of goroutine interleaving across links. Re-running
// a scenario with the same seed reproduces the same fault schedule, which
// every verdict trace (Verdicts) makes checkable.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// Wildcard matches any address in fault-rule and partition keys.
const Wildcard = "*"

// LinkFaults are the probabilistic fault rules of one directed link.
type LinkFaults struct {
	// Drop is the probability a one-way frame is silently lost (requests
	// fail with transport.ErrUnreachable instead — a lost request is
	// indistinguishable from an unreachable peer to the caller).
	Drop float64
	// Duplicate is the probability a one-way frame is delivered twice.
	Duplicate float64
	// DelayMin/DelayMax bound the added per-frame latency, picked uniformly
	// (both zero: no added delay).
	DelayMin, DelayMax time.Duration
}

func (f LinkFaults) active() bool {
	return f.Drop > 0 || f.Duplicate > 0 || f.DelayMax > 0
}

// Action is one verdict kind in a link's fault schedule.
type Action uint8

const (
	// Pass delivers the frame unmodified (possibly delayed).
	Pass Action = iota
	// Drop loses the frame.
	Drop
	// Duplicate delivers the frame twice.
	Duplicate
)

// String renders the action.
func (a Action) String() string {
	switch a {
	case Pass:
		return "pass"
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// Verdict is one recorded fault decision: the Seq-th frame on a link under
// active fault rules.
type Verdict struct {
	Seq    int
	Action Action
	Delay  time.Duration
}

// linkKey is a directed (from, to) address pair.
type linkKey struct{ from, to string }

// linkState is the deterministic per-link fault stream.
type linkState struct {
	rng   *rand.Rand
	seq   int
	trace []Verdict
}

// Controller holds the shared fault state for a set of wrapped endpoints.
// All methods are safe for concurrent use.
type Controller struct {
	seed int64

	mu     sync.Mutex
	faults map[linkKey]LinkFaults
	cut    map[linkKey]bool
	killed map[string]bool
	slow   map[string]time.Duration
	links  map[linkKey]*linkState
	disks  map[string]*diskState
	events []string
	closed bool
	wg     sync.WaitGroup // deferred (delayed/duplicated) deliveries in flight
}

// NewController creates a fault controller. The seed fully determines every
// probabilistic verdict; use a fixed seed to reproduce a fault schedule.
func NewController(seed int64) *Controller {
	return &Controller{
		seed:   seed,
		faults: make(map[linkKey]LinkFaults),
		cut:    make(map[linkKey]bool),
		killed: make(map[string]bool),
		slow:   make(map[string]time.Duration),
		links:  make(map[linkKey]*linkState),
	}
}

// Seed returns the controller's seed (printed by soak tests for reproduction).
func (c *Controller) Seed() int64 { return c.seed }

// linkSeed derives the per-link RNG seed from the controller seed and the
// link addresses, so each link's verdict stream is independent of traffic on
// every other link.
func (c *Controller) linkSeed(k linkKey) int64 {
	h := fnv.New64a()
	h.Write([]byte(k.from))
	h.Write([]byte{0})
	h.Write([]byte(k.to))
	return c.seed ^ int64(h.Sum64())
}

// SetFaults installs (or, with a zero LinkFaults, clears) the probabilistic
// fault rules of the directed link from→to. Wildcard ("*") matches any
// address; exact keys take precedence over (from, *), then (*, to), then
// (*, *).
func (c *Controller) SetFaults(from, to string, f LinkFaults) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := linkKey{from, to}
	if f.active() {
		c.faults[k] = f
		c.eventLocked(fmt.Sprintf("faults %s->%s drop=%.2f dup=%.2f delay=[%v,%v]",
			from, to, f.Drop, f.Duplicate, f.DelayMin, f.DelayMax))
	} else {
		delete(c.faults, k)
		c.eventLocked(fmt.Sprintf("clear-faults %s->%s", from, to))
	}
}

// faultsForLocked resolves the active fault rule for a link.
func (c *Controller) faultsForLocked(from, to string) (LinkFaults, bool) {
	for _, k := range []linkKey{{from, to}, {from, Wildcard}, {Wildcard, to}, {Wildcard, Wildcard}} {
		if f, ok := c.faults[k]; ok {
			return f, true
		}
	}
	return LinkFaults{}, false
}

// Partition cuts (or heals, with cut=false) the directed link from→to.
// Either side may be the Wildcard.
func (c *Controller) Partition(from, to string, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cut {
		c.cut[linkKey{from, to}] = true
		c.eventLocked(fmt.Sprintf("cut %s->%s", from, to))
	} else {
		delete(c.cut, linkKey{from, to})
		c.eventLocked(fmt.Sprintf("heal %s->%s", from, to))
	}
}

// PartitionBoth cuts (or heals) both directions between a and b — a
// symmetric network partition.
func (c *Controller) PartitionBoth(a, b string, cut bool) {
	c.Partition(a, b, cut)
	c.Partition(b, a, cut)
}

// Isolate cuts (or heals) every link to and from addr: the node stays up
// but is unreachable in both directions — a full network partition of one
// node.
func (c *Controller) Isolate(addr string, cut bool) {
	c.Partition(addr, Wildcard, cut)
	c.Partition(Wildcard, addr, cut)
}

// Heal clears every partition (cut and isolation). Kills, slow nodes and
// probabilistic fault rules are untouched; use Restart/SetSlow/SetFaults.
func (c *Controller) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cut = make(map[linkKey]bool)
	c.eventLocked("heal-all")
}

// Kill blackholes addr: every frame to or from it is dropped and inbound
// handling stops — indistinguishable from a crash to the rest of the
// cluster.
func (c *Controller) Kill(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.killed[addr] = true
	c.eventLocked("kill " + addr)
}

// Restart revives a killed addr (crash-restart: the node never lost its
// in-memory state; pair with a real process restart for amnesia crashes).
func (c *Controller) Restart(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.killed, addr)
	c.eventLocked("restart " + addr)
}

// Killed reports whether addr is currently blackholed (always false after
// Close: a closed controller injects no faults).
func (c *Controller) Killed(addr string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.closed && c.killed[addr]
}

// SetSlow adds extra latency to every frame sent or received by addr (zero
// clears it).
func (c *Controller) SetSlow(addr string, extra time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if extra > 0 {
		c.slow[addr] = extra
		c.eventLocked(fmt.Sprintf("slow %s +%v", addr, extra))
	} else {
		delete(c.slow, addr)
		c.eventLocked("unslow " + addr)
	}
}

// reachableLocked reports whether from can currently reach to under the
// kill and partition state.
func (c *Controller) reachableLocked(from, to string) bool {
	if c.killed[from] || c.killed[to] {
		return false
	}
	for _, k := range []linkKey{{from, to}, {from, Wildcard}, {Wildcard, to}} {
		if c.cut[k] {
			return false
		}
	}
	return true
}

// plan is one send/request decision.
type plan struct {
	unreachable bool
	action      Action
	delay       time.Duration
}

// plan computes the fault verdict for one frame from→to, consuming the
// link's deterministic verdict stream when fault rules are active.
func (c *Controller) plan(from, to string) plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return plan{}
	}
	if !c.reachableLocked(from, to) {
		return plan{unreachable: true}
	}
	p := plan{delay: c.slow[from] + c.slow[to]}
	f, ok := c.faultsForLocked(from, to)
	if !ok {
		return p
	}
	k := linkKey{from, to}
	ls := c.links[k]
	if ls == nil {
		ls = &linkState{rng: rand.New(rand.NewSource(c.linkSeed(k)))}
		c.links[k] = ls
	}
	// Fixed draw order (drop, duplicate, delay) keeps the stream stable
	// across rule changes that only tweak probabilities.
	pDrop := ls.rng.Float64()
	pDup := ls.rng.Float64()
	pDelay := ls.rng.Float64()
	switch {
	case pDrop < f.Drop:
		p.action = Drop
	case pDup < f.Duplicate:
		p.action = Duplicate
	}
	if f.DelayMax > f.DelayMin {
		p.delay += f.DelayMin + time.Duration(pDelay*float64(f.DelayMax-f.DelayMin))
	} else {
		p.delay += f.DelayMin
	}
	ls.trace = append(ls.trace, Verdict{Seq: ls.seq, Action: p.action, Delay: p.delay})
	ls.seq++
	return p
}

// Verdicts returns the recorded fault schedule of the directed link from→to:
// one verdict per frame sent while fault rules were active. Two runs with
// the same seed produce pairwise-equal prefixes.
func (c *Controller) Verdicts(from, to string) []Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls := c.links[linkKey{from, to}]
	if ls == nil {
		return nil
	}
	out := make([]Verdict, len(ls.trace))
	copy(out, ls.trace)
	return out
}

// TracedLinks lists every link with a recorded fault schedule.
func (c *Controller) TracedLinks() [][2]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][2]string, 0, len(c.links))
	for k := range c.links {
		out = append(out, [2]string{k.from, k.to})
	}
	return out
}

// Events returns the ordered log of state changes (kills, partitions, rule
// installs) applied to the controller.
func (c *Controller) Events() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.events))
	copy(out, c.events)
	return out
}

func (c *Controller) eventLocked(s string) { c.events = append(c.events, s) }

// after schedules fn on a deferred delivery (delay d, or immediately on a
// fresh goroutine for d<=0), tracked so Close can wait for in-flight frames.
func (c *Controller) after(d time.Duration, fn func()) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.wg.Add(1)
	c.mu.Unlock()
	run := func() {
		defer c.wg.Done()
		c.mu.Lock()
		dead := c.closed
		c.mu.Unlock()
		if !dead {
			fn()
		}
	}
	if d <= 0 {
		go run()
		return
	}
	time.AfterFunc(d, run)
}

// Close stops the controller: pending deferred deliveries are drained (or
// discarded once their timers fire) and all future faults become no-ops.
// Wrapped endpoints keep forwarding to their inner transports unmodified.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.wg.Wait()
}
