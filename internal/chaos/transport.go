package chaos

import (
	"fmt"
	"sync"
	"time"

	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Wrap returns a Transport view of inner with ctrl's faults applied to every
// frame sent or served by this endpoint. self is the endpoint's address for
// fault bookkeeping: on the in-process mesh it is the mesh label; when the
// endpoint Listens, self is replaced by the bound address, so ":0"-style TCP
// listeners are addressed by their real port in fault rules.
//
// Fault application:
//   - Send: kill/partition → transport.ErrUnreachable; drop → silently lost
//     (the caller sees success, as on a real lossy network); delay/duplicate
//     → the frame (body copied) is re-sent on deferred goroutines.
//   - Request: kill/partition and drop → transport.ErrUnreachable (a lost
//     request is indistinguishable from an unreachable peer); delay → the
//     round-trip is slowed inline.
//   - Listen: inbound frames to a killed endpoint are discarded before the
//     handler runs.
func Wrap(ctrl *Controller, inner transport.Transport, self string) transport.Transport {
	return &endpoint{ctrl: ctrl, inner: inner, self: self}
}

// endpoint applies a Controller's faults to one node's transport.
type endpoint struct {
	ctrl  *Controller
	inner transport.Transport

	mu   sync.Mutex
	self string
}

func (e *endpoint) selfAddr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.self
}

// Listen implements transport.Transport: inbound traffic to a killed
// endpoint is blackholed before the handler runs.
func (e *endpoint) Listen(addr string, h Handler) (string, error) {
	wrapped := func(env *wire.Envelope) *wire.Envelope {
		if e.ctrl.Killed(e.selfAddr()) {
			return nil
		}
		return h(env)
	}
	bound, err := e.inner.Listen(addr, wrapped)
	if err != nil {
		return "", err
	}
	e.mu.Lock()
	e.self = bound
	e.mu.Unlock()
	return bound, nil
}

// Handler aliases transport.Handler for readability.
type Handler = transport.Handler

// Send implements transport.Transport with the controller's faults applied.
func (e *endpoint) Send(addr string, env *wire.Envelope) error {
	self := e.selfAddr()
	p := e.ctrl.plan(self, addr)
	if p.unreachable {
		return fmt.Errorf("%w: chaos: %s -> %s", transport.ErrUnreachable, self, addr)
	}
	if p.action == Drop {
		return nil // lost on the wire; the sender cannot tell
	}
	copies := 1
	if p.action == Duplicate {
		copies = 2
	}
	if p.delay <= 0 && copies == 1 {
		return e.inner.Send(addr, env)
	}
	// Deferred delivery: the caller may recycle env.Body as soon as we
	// return, so ship copies.
	for i := 0; i < copies; i++ {
		clone := cloneEnvelope(env)
		e.ctrl.after(p.delay, func() { _ = e.inner.Send(addr, clone) })
	}
	return nil
}

// Request implements transport.Transport with the controller's faults
// applied to the request leg.
func (e *endpoint) Request(addr string, env *wire.Envelope, timeout time.Duration) (*wire.Envelope, error) {
	self := e.selfAddr()
	p := e.ctrl.plan(self, addr)
	if p.unreachable || p.action == Drop {
		return nil, fmt.Errorf("%w: chaos: %s -> %s", transport.ErrUnreachable, self, addr)
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	resp, err := e.inner.Request(addr, env, timeout)
	if err != nil {
		return nil, err
	}
	// The response leg crosses the reverse link: a partition or kill raised
	// after the request went out loses the response.
	if rp := e.ctrl.plan(addr, self); rp.unreachable || rp.action == Drop {
		return nil, fmt.Errorf("%w: chaos: response %s -> %s lost", transport.ErrUnreachable, addr, self)
	}
	return resp, nil
}

// Close implements transport.Transport.
func (e *endpoint) Close() error { return e.inner.Close() }

// SendCopies implements transport.Copying: the immediate path forwards
// straight to the inner transport (its guarantee applies); the deferred
// path always copies before returning.
func (e *endpoint) SendCopies() bool { return transport.SendCopies(e.inner) }

// cloneEnvelope deep-copies env so deferred deliveries never alias pooled
// sender buffers.
func cloneEnvelope(env *wire.Envelope) *wire.Envelope {
	body := make([]byte, len(env.Body))
	copy(body, env.Body)
	return &wire.Envelope{Kind: env.Kind, From: env.From, Body: body}
}
