package chaos

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// pair builds two wrapped mesh endpoints a→b with a counting handler on b.
func pair(t *testing.T, ctrl *Controller) (a transport.Transport, received *atomic.Int64, mesh *transport.Mesh) {
	t.Helper()
	mesh = transport.NewMesh(0)
	t.Cleanup(func() { mesh.Close() })
	received = &atomic.Int64{}
	b := Wrap(ctrl, mesh.Endpoint("b"), "b")
	if _, err := b.Listen("b", func(env *wire.Envelope) *wire.Envelope {
		received.Add(1)
		if env.Kind == wire.KindTableRequest {
			return &wire.Envelope{Kind: wire.KindTableResponse, From: 2}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a = Wrap(ctrl, mesh.Endpoint("a"), "a")
	return a, received, mesh
}

func env() *wire.Envelope {
	return &wire.Envelope{Kind: wire.KindForward, From: 1, Body: []byte("x")}
}

// waitCount polls until received reaches want or the deadline passes.
func waitCount(t *testing.T, received *atomic.Int64, want int64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if received.Load() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("received %d, want >= %d", received.Load(), want)
}

func TestPassThroughNoFaults(t *testing.T) {
	ctrl := NewController(1)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	for i := 0; i < 10; i++ {
		if err := a.Send("b", env()); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, received, 10, 2*time.Second)
	if resp, err := a.Request("b", &wire.Envelope{Kind: wire.KindTableRequest}, time.Second); err != nil || resp.Kind != wire.KindTableResponse {
		t.Fatalf("request: %v %v", resp, err)
	}
	if got := ctrl.Verdicts("a", "b"); got != nil {
		t.Fatalf("fault-free link recorded verdicts: %v", got)
	}
}

func TestDropAllLosesSendsSilently(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	ctrl.SetFaults("a", "b", LinkFaults{Drop: 1})
	for i := 0; i < 20; i++ {
		if err := a.Send("b", env()); err != nil {
			t.Fatalf("dropped send must look successful: %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := received.Load(); got != 0 {
		t.Fatalf("%d frames leaked through Drop=1", got)
	}
	if _, err := a.Request("b", &wire.Envelope{Kind: wire.KindTableRequest}, time.Second); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("dropped request error = %v, want ErrUnreachable", err)
	}
	if len(ctrl.Verdicts("a", "b")) != 21 {
		t.Fatalf("verdict trace: %v", ctrl.Verdicts("a", "b"))
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	ctrl.SetFaults("a", "b", LinkFaults{Duplicate: 1})
	const n = 15
	for i := 0; i < n; i++ {
		if err := a.Send("b", env()); err != nil {
			t.Fatal(err)
		}
	}
	waitCount(t, received, 2*n, 2*time.Second)
	time.Sleep(30 * time.Millisecond)
	if got := received.Load(); got != 2*n {
		t.Fatalf("received %d, want exactly %d", got, 2*n)
	}
}

func TestDelayDefersDelivery(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	ctrl.SetFaults("a", "b", LinkFaults{DelayMin: 60 * time.Millisecond, DelayMax: 80 * time.Millisecond})
	start := time.Now()
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	if received.Load() != 0 {
		t.Fatal("frame arrived before its delay")
	}
	waitCount(t, received, 1, 2*time.Second)
	if since := time.Since(start); since < 55*time.Millisecond {
		t.Fatalf("frame arrived after %v, want >= ~60ms", since)
	}
}

// TestDelayedSendCopiesBody: a deferred frame must not alias the caller's
// buffer (pooled encode buffers are recycled right after Send).
func TestDelayedSendCopiesBody(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	var got atomic.Value
	b := Wrap(ctrl, mesh.Endpoint("b"), "b")
	if _, err := b.Listen("b", func(e *wire.Envelope) *wire.Envelope {
		got.Store(string(e.Body))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a := Wrap(ctrl, mesh.Endpoint("a"), "a")
	ctrl.SetFaults("a", "b", LinkFaults{DelayMin: 30 * time.Millisecond, DelayMax: 40 * time.Millisecond})
	body := []byte("payload")
	if err := a.Send("b", &wire.Envelope{Kind: wire.KindForward, Body: body}); err != nil {
		t.Fatal(err)
	}
	copy(body, "XXXXXXX") // recycle the buffer while the frame is in flight
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if v, _ := got.Load().(string); v != "payload" {
		t.Fatalf("delivered body %q, want %q", v, "payload")
	}
}

func TestKillRestartBlackhole(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, mesh := pair(t, ctrl)
	ctrl.Kill("b")
	if err := a.Send("b", env()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("send to killed node: %v, want ErrUnreachable", err)
	}
	// Inbound traffic from an unwrapped sender is blackholed at the handler.
	raw := mesh.Endpoint("c")
	if err := raw.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if received.Load() != 0 {
		t.Fatal("killed node handled inbound traffic")
	}
	// Outbound from the killed node is blackholed too.
	bOut := Wrap(ctrl, mesh.Endpoint("b-out"), "b")
	if err := bOut.Send("a", env()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("send from killed node: %v, want ErrUnreachable", err)
	}
	ctrl.Restart("b")
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	waitCount(t, received, 1, 2*time.Second)
}

func TestPartitionAndHeal(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	ctrl.PartitionBoth("a", "b", true)
	if err := a.Send("b", env()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("partitioned send: %v", err)
	}
	ctrl.Heal()
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	waitCount(t, received, 1, 2*time.Second)

	// Asymmetric: a→b cut, b→a open.
	ctrl.Partition("a", "b", true)
	if err := a.Send("b", env()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("one-way cut: %v", err)
	}
	ctrl.Partition("a", "b", false)

	// Isolation cuts wildcard links in both directions.
	ctrl.Isolate("b", true)
	if err := a.Send("b", env()); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("isolated send: %v", err)
	}
	ctrl.Isolate("b", false)
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	waitCount(t, received, 2, 2*time.Second)
}

func TestSlowNodeAddsLatency(t *testing.T) {
	ctrl := NewController(7)
	defer ctrl.Close()
	a, received, _ := pair(t, ctrl)
	ctrl.SetSlow("b", 70*time.Millisecond)
	start := time.Now()
	if _, err := a.Request("b", &wire.Envelope{Kind: wire.KindTableRequest}, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since < 65*time.Millisecond {
		t.Fatalf("request took %v, want >= ~70ms", since)
	}
	before := received.Load()
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	if received.Load() != before {
		t.Fatal("slow-node frame arrived immediately")
	}
	waitCount(t, received, before+1, 2*time.Second)
	ctrl.SetSlow("b", 0)
}

// TestDeterministicVerdicts drives the same single-threaded frame sequence
// under two controllers with the same seed: the verdict traces must be
// identical. A third controller with another seed must diverge.
func TestDeterministicVerdicts(t *testing.T) {
	run := func(seed int64) []Verdict {
		ctrl := NewController(seed)
		defer ctrl.Close()
		a, _, _ := pair(t, ctrl)
		ctrl.SetFaults("a", "b", LinkFaults{
			Drop: 0.3, Duplicate: 0.2,
			DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond,
		})
		for i := 0; i < 200; i++ {
			_ = a.Send("b", env())
		}
		return ctrl.Verdicts("a", "b")
	}
	t1, t2, t3 := run(42), run(42), run(43)
	if len(t1) != 200 || len(t2) != 200 {
		t.Fatalf("trace lengths %d, %d, want 200", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same-seed traces diverge at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	same := 0
	for i := range t1 {
		if t1[i] == t3[i] {
			same++
		}
	}
	if same == len(t1) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestPerLinkIsolation: traffic on one link must not perturb another link's
// verdict stream (each has its own seeded RNG).
func TestPerLinkIsolation(t *testing.T) {
	trace := func(interleave bool) []Verdict {
		ctrl := NewController(11)
		defer ctrl.Close()
		mesh := transport.NewMesh(0)
		defer mesh.Close()
		sink := func(*wire.Envelope) *wire.Envelope { return nil }
		for _, addr := range []string{"x", "y"} {
			ep := Wrap(ctrl, mesh.Endpoint(addr), addr)
			if _, err := ep.Listen(addr, sink); err != nil {
				t.Fatal(err)
			}
		}
		a := Wrap(ctrl, mesh.Endpoint("a"), "a")
		ctrl.SetFaults("a", "x", LinkFaults{Drop: 0.5})
		ctrl.SetFaults("a", "y", LinkFaults{Drop: 0.5})
		for i := 0; i < 100; i++ {
			_ = a.Send("x", env())
			if interleave {
				_ = a.Send("y", env())
			}
		}
		return ctrl.Verdicts("a", "x")
	}
	with, without := trace(true), trace(false)
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("cross-link traffic perturbed link a->x at %d", i)
		}
	}
}

func TestScenarioRunsStepsInOrder(t *testing.T) {
	ctrl := NewController(1)
	defer ctrl.Close()
	var order []string // appended only from the scenario goroutine, read after Wait
	mark := func(s string) func() {
		return func() { order = append(order, s) }
	}
	sc := NewScenario().
		At(60 * time.Millisecond).Do(mark("second")).
		At(20 * time.Millisecond).Do(mark("first")).Kill("m").
		At(100 * time.Millisecond).Restart("m").Do(mark("third"))
	run := sc.Run(ctrl)
	time.Sleep(40 * time.Millisecond)
	if !ctrl.Killed("m") {
		t.Fatal("kill step not applied by 40ms")
	}
	run.Wait()
	if ctrl.Killed("m") {
		t.Fatal("restart step not applied")
	}
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("step order: %v", order)
	}
}

func TestScenarioStopAborts(t *testing.T) {
	ctrl := NewController(1)
	defer ctrl.Close()
	sc := NewScenario().At(10 * time.Hour).Kill("m")
	run := sc.Run(ctrl)
	run.Stop()
	run.Wait()
	if ctrl.Killed("m") {
		t.Fatal("aborted step still applied")
	}
}

func TestAuditorInvariants(t *testing.T) {
	a := NewAuditor()
	a.Subscribed(1, []core.Range{{Low: 0, High: 10}})
	a.Subscribed(2, []core.Range{{Low: 90, High: 100}})
	a.Published("m1", []float64{5})  // matches sub 1 only
	a.Published("m2", []float64{95}) // matches sub 2 only
	if got := a.Expected(); got != 2 {
		t.Fatalf("expected pairs = %d, want 2", got)
	}
	if err := a.Check(); err == nil {
		t.Fatal("missing deliveries not reported")
	}
	a.Delivered(1, &core.Message{Attrs: []float64{5}, Payload: []byte("m1")})
	a.Delivered(2, &core.Message{Attrs: []float64{95}, Payload: []byte("m2")})
	if err := a.Check(); err != nil {
		t.Fatalf("complete accounting rejected: %v", err)
	}
	// Duplicates are tolerated and counted.
	a.Delivered(1, &core.Message{Attrs: []float64{5}, Payload: []byte("m1")})
	if err := a.Check(); err != nil {
		t.Fatalf("duplicate delivery flagged: %v", err)
	}
	if a.Duplicates() != 1 {
		t.Fatalf("duplicates = %d, want 1", a.Duplicates())
	}
	// Spurious: subscriber 1 must never see m2.
	a.Delivered(1, &core.Message{Attrs: []float64{95}, Payload: []byte("m2")})
	if err := a.Check(); err == nil {
		t.Fatal("spurious delivery not reported")
	}
	if len(a.Spurious()) != 1 {
		t.Fatalf("spurious: %v", a.Spurious())
	}
}

func TestAuditorWaitComplete(t *testing.T) {
	a := NewAuditor()
	a.Subscribed(1, []core.Range{{Low: 0, High: 10}})
	a.Published("m", []float64{3})
	go func() {
		time.Sleep(30 * time.Millisecond)
		a.Delivered(1, &core.Message{Attrs: []float64{3}, Payload: []byte("m")})
	}()
	if err := a.WaitComplete(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	b := NewAuditor()
	b.Subscribed(1, []core.Range{{Low: 0, High: 10}})
	b.Published("never", []float64{3})
	if err := b.WaitComplete(50 * time.Millisecond); err == nil {
		t.Fatal("timeout with missing deliveries returned nil")
	}
}

func TestControllerCloseStopsFaults(t *testing.T) {
	ctrl := NewController(1)
	a, received, _ := pair(t, ctrl)
	ctrl.Kill("b")
	ctrl.Close()
	// After close the wrapper is transparent: faults no longer apply.
	if err := a.Send("b", env()); err != nil {
		t.Fatal(err)
	}
	waitCount(t, received, 1, 2*time.Second)
}
