package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"bluedove/internal/core"
)

// Auditor checks BlueDove's delivery-accounting invariants under fault
// injection:
//
//  1. At-least-once: every acked (accepted) publication is delivered to
//     every subscriber holding a matching subscription at least once.
//  2. No spurious delivery: no subscriber receives a publication that none
//     of its subscriptions match.
//
// Publications are identified by an opaque token carried in the message
// payload (message IDs are assigned dispatcher-side, so the publisher cannot
// know them). Tests register subscriptions and publications, route every
// delivery callback through Delivered, then call WaitComplete/Check.
// All methods are safe for concurrent use.
type Auditor struct {
	mu sync.Mutex
	// subs holds each subscriber's registered predicate sets.
	subs map[int][][]core.Range
	// pubs maps publication token → attribute point.
	pubs map[string][]float64
	// got maps subscriber → token → delivery count.
	got map[int]map[string]int
	// firstAt maps subscriber → token → first delivery time.
	firstAt map[int]map[string]time.Time
	// spurious collects invariant-2 violations as they arrive.
	spurious []string
}

// NewAuditor creates an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{
		subs:    make(map[int][][]core.Range),
		pubs:    make(map[string][]float64),
		got:     make(map[int]map[string]int),
		firstAt: make(map[int]map[string]time.Time),
	}
}

// Subscribed registers one subscription of subscriber sub (an arbitrary
// test-chosen key). Call before the subscription becomes active.
func (a *Auditor) Subscribed(sub int, preds []core.Range) {
	cp := make([]core.Range, len(preds))
	copy(cp, preds)
	a.mu.Lock()
	a.subs[sub] = append(a.subs[sub], cp)
	a.mu.Unlock()
}

// Published records one accepted publication: a unique token (which the test
// must carry as the message payload) and its attribute point. Call only for
// publications the system accepted (Publish returned nil).
func (a *Auditor) Published(token string, attrs []float64) {
	cp := make([]float64, len(attrs))
	copy(cp, attrs)
	a.mu.Lock()
	a.pubs[token] = cp
	a.mu.Unlock()
}

// Delivered records one delivery to subscriber sub. Duplicate deliveries are
// counted, not flagged: at-least-once semantics permit them.
func (a *Auditor) Delivered(sub int, msg *core.Message) {
	token := string(msg.Payload)
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.got[sub] == nil {
		a.got[sub] = make(map[string]int)
		a.firstAt[sub] = make(map[string]time.Time)
	}
	a.got[sub][token]++
	if _, seen := a.firstAt[sub][token]; !seen {
		a.firstAt[sub][token] = time.Now()
	}
	if !a.matchesLocked(sub, msg.Attrs) {
		a.spurious = append(a.spurious,
			fmt.Sprintf("subscriber %d received %q (attrs %v) matching none of its %d subscriptions",
				sub, token, msg.Attrs, len(a.subs[sub])))
	}
}

// matchesLocked reports whether any of sub's subscriptions matches attrs.
func (a *Auditor) matchesLocked(sub int, attrs []float64) bool {
	for _, preds := range a.subs[sub] {
		if len(preds) > len(attrs) {
			continue
		}
		match := true
		for d, p := range preds {
			if !p.Contains(attrs[d]) {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// Expected returns the number of (publication, subscriber) pairs the
// at-least-once invariant requires a delivery for.
func (a *Auditor) Expected() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, attrs := range a.pubs {
		for sub := range a.subs {
			if a.matchesLocked(sub, attrs) {
				n++
			}
		}
	}
	return n
}

// Missing returns one line per (publication, subscriber) pair still awaiting
// its first delivery.
func (a *Auditor) Missing() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []string
	for token, attrs := range a.pubs {
		for sub := range a.subs {
			if a.matchesLocked(sub, attrs) && a.got[sub][token] == 0 {
				out = append(out, fmt.Sprintf("subscriber %d never received %q (attrs %v)", sub, token, attrs))
			}
		}
	}
	sort.Strings(out)
	return out
}

// Duplicates returns the number of deliveries beyond the first per
// (publication, subscriber) pair — the at-least-once redundancy cost.
func (a *Auditor) Duplicates() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, byToken := range a.got {
		for _, count := range byToken {
			if count > 1 {
				n += count - 1
			}
		}
	}
	return n
}

// Spurious returns the recorded invariant-2 violations.
func (a *Auditor) Spurious() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, len(a.spurious))
	copy(out, a.spurious)
	return out
}

// Check returns nil when both invariants hold, or an error naming every
// missing and spurious delivery.
func (a *Auditor) Check() error {
	missing := a.Missing()
	spurious := a.Spurious()
	if len(missing) == 0 && len(spurious) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chaos: delivery accounting violated (%d missing, %d spurious)",
		len(missing), len(spurious))
	for _, m := range missing {
		b.WriteString("\n  missing: " + m)
	}
	for _, s := range spurious {
		b.WriteString("\n  spurious: " + s)
	}
	return fmt.Errorf("%s", b.String())
}

// WaitComplete polls until every expected delivery has been observed, then
// runs Check (catching spurious deliveries too). It fails with the full
// violation list when the timeout elapses first.
func (a *Auditor) WaitComplete(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if len(a.Missing()) == 0 {
			return a.Check()
		}
		if time.Now().After(deadline) {
			return a.Check()
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// FirstDeliveryGap returns the longest interval between consecutive first
// deliveries observed after t — the stall a fault caused — and the time the
// stall ended (delivery resumed). Zero gap means deliveries never paused.
func (a *Auditor) FirstDeliveryGap(t time.Time) (gap time.Duration, resumedAt time.Time) {
	a.mu.Lock()
	var times []time.Time
	for _, byToken := range a.firstAt {
		for _, at := range byToken {
			if at.After(t) {
				times = append(times, at)
			}
		}
	}
	a.mu.Unlock()
	if len(times) == 0 {
		return 0, time.Time{}
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	prev := t
	for _, at := range times {
		if d := at.Sub(prev); d > gap {
			gap, resumedAt = d, at
		}
		prev = at
	}
	return gap, resumedAt
}
