package client

import (
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// dedupClient builds a direct-mode client with the given window, recording
// every application callback.
func dedupClient(t *testing.T, mesh *transport.Mesh, window int) (*Client, func() []core.MessageID) {
	t.Helper()
	var mu sync.Mutex
	var got []core.MessageID
	c, err := New(Config{
		Transport:      mesh.Endpoint("c1"),
		DispatcherAddr: "d1",
		Subscriber:     1,
		ListenAddr:     "c1-deliver",
		DedupWindow:    window,
		OnDeliver: func(msg *core.Message, _ []core.SubscriptionID) {
			mu.Lock()
			got = append(got, msg.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, func() []core.MessageID {
		mu.Lock()
		defer mu.Unlock()
		return append([]core.MessageID(nil), got...)
	}
}

func deliver(t *testing.T, mesh *transport.Mesh, id core.MessageID) {
	t.Helper()
	msg := &core.Message{ID: id, Attrs: []float64{1}, Payload: []byte("x")}
	body := (&wire.DeliverBody{Msg: msg, SubIDs: []core.SubscriptionID{1}}).Encode()
	if err := mesh.Endpoint("m1").Send("c1-deliver",
		&wire.Envelope{Kind: wire.KindDeliver, Body: body}); err != nil {
		t.Fatal(err)
	}
}

func waitDeliveries(t *testing.T, fetch func() []core.MessageID, n int) []core.MessageID {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := fetch(); len(got) >= n {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d deliveries (have %d)", n, len(fetch()))
	return nil
}

// TestDedupSuppressesDuplicateDeliver: an at-least-once cluster can push the
// same publication twice (lost ack, restarted node); the window must hand it
// to the application exactly once.
func TestDedupSuppressesDuplicateDeliver(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	c, fetch := dedupClient(t, mesh, 8)

	deliver(t, mesh, 42)
	deliver(t, mesh, 42) // redelivery
	deliver(t, mesh, 43)
	got := waitDeliveries(t, fetch, 2)
	// Give a straggling duplicate callback a moment to (wrongly) land.
	time.Sleep(20 * time.Millisecond)
	got = fetch()
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("application saw %v, want [42 43]", got)
	}
	if n := c.SuppressedDuplicates(); n != 1 {
		t.Fatalf("SuppressedDuplicates = %d, want 1", n)
	}
}

// TestDedupWindowEviction: once DedupWindow distinct newer IDs pass, an old
// ID falls out of the window and a late duplicate is (correctly, per the
// bounded-memory contract) delivered again.
func TestDedupWindowEviction(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	c, fetch := dedupClient(t, mesh, 2)

	deliver(t, mesh, 1)
	deliver(t, mesh, 2)
	deliver(t, mesh, 3) // evicts 1 from the 2-slot window
	deliver(t, mesh, 1) // no longer remembered: delivered again
	got := waitDeliveries(t, fetch, 4)
	want := []core.MessageID{1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("application saw %v, want %v", got, want)
		}
	}
	if n := c.SuppressedDuplicates(); n != 0 {
		t.Fatalf("SuppressedDuplicates = %d, want 0", n)
	}
}

// TestDedupDisabledByDefault: with DedupWindow zero every delivery reaches
// the application, duplicates included.
func TestDedupDisabledByDefault(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	_, fetch := dedupClient(t, mesh, 0)

	deliver(t, mesh, 7)
	deliver(t, mesh, 7)
	got := waitDeliveries(t, fetch, 2)
	if got[0] != 7 || got[1] != 7 {
		t.Fatalf("application saw %v, want [7 7]", got)
	}
}
