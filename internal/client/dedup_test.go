package client

import (
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/edge"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// dedupClient builds a direct-mode client with the given window, recording
// every application callback.
func dedupClient(t *testing.T, mesh *transport.Mesh, window int) (*Client, func() []core.MessageID) {
	t.Helper()
	var mu sync.Mutex
	var got []core.MessageID
	c, err := New(Config{
		Transport:      mesh.Endpoint("c1"),
		DispatcherAddr: "d1",
		Subscriber:     1,
		ListenAddr:     "c1-deliver",
		DedupWindow:    window,
		OnDeliver: func(msg *core.Message, _ []core.SubscriptionID) {
			mu.Lock()
			got = append(got, msg.ID)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, func() []core.MessageID {
		mu.Lock()
		defer mu.Unlock()
		return append([]core.MessageID(nil), got...)
	}
}

func deliver(t *testing.T, mesh *transport.Mesh, id core.MessageID) {
	t.Helper()
	msg := &core.Message{ID: id, Attrs: []float64{1}, Payload: []byte("x")}
	body := (&wire.DeliverBody{Msg: msg, SubIDs: []core.SubscriptionID{1}}).Encode()
	if err := mesh.Endpoint("m1").Send("c1-deliver",
		&wire.Envelope{Kind: wire.KindDeliver, Body: body}); err != nil {
		t.Fatal(err)
	}
}

func waitDeliveries(t *testing.T, fetch func() []core.MessageID, n int) []core.MessageID {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if got := fetch(); len(got) >= n {
			return got
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d deliveries (have %d)", n, len(fetch()))
	return nil
}

// TestDedupSuppressesDuplicateDeliver: an at-least-once cluster can push the
// same publication twice (lost ack, restarted node); the window must hand it
// to the application exactly once.
func TestDedupSuppressesDuplicateDeliver(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	c, fetch := dedupClient(t, mesh, 8)

	deliver(t, mesh, 42)
	deliver(t, mesh, 42) // redelivery
	deliver(t, mesh, 43)
	got := waitDeliveries(t, fetch, 2)
	// Give a straggling duplicate callback a moment to (wrongly) land.
	time.Sleep(20 * time.Millisecond)
	got = fetch()
	if len(got) != 2 || got[0] != 42 || got[1] != 43 {
		t.Fatalf("application saw %v, want [42 43]", got)
	}
	if n := c.SuppressedDuplicates(); n != 1 {
		t.Fatalf("SuppressedDuplicates = %d, want 1", n)
	}
}

// TestDedupWindowEviction: once DedupWindow distinct newer IDs pass, an old
// ID falls out of the window and a late duplicate is (correctly, per the
// bounded-memory contract) delivered again.
func TestDedupWindowEviction(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	c, fetch := dedupClient(t, mesh, 2)

	deliver(t, mesh, 1)
	deliver(t, mesh, 2)
	deliver(t, mesh, 3) // evicts 1 from the 2-slot window
	deliver(t, mesh, 1) // no longer remembered: delivered again
	got := waitDeliveries(t, fetch, 4)
	want := []core.MessageID{1, 2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("application saw %v, want %v", got, want)
		}
	}
	if n := c.SuppressedDuplicates(); n != 0 {
		t.Fatalf("SuppressedDuplicates = %d, want 0", n)
	}
}

// TestDedupAbsorbsResumeReplay (DedupWindow x resume): an edge session dies
// with deliveries sent but unacked; resuming from the persisted ack state
// replays them, and the carried-over suppression window must hand the
// application each publication exactly once.
func TestDedupAbsorbsResumeReplay(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()

	// Minimal upstream dispatcher: acks the edge's aggregated subscribe.
	var subID uint64
	if _, err := mesh.Endpoint("disp").Listen("disp", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind != wire.KindSubscribe {
			return nil
		}
		subID++
		return &wire.Envelope{Kind: wire.KindSubscribeAck,
			Body: (&wire.SubscribeAckBody{ID: core.SubscriptionID(subID)}).Encode()}
	}); err != nil {
		t.Fatal(err)
	}

	e, err := edge.New(edge.Config{
		ID:             3,
		Addr:           "edge",
		Space:          core.UniformSpace(1, 100),
		Transport:      mesh.Endpoint("edge"),
		DispatcherAddr: "disp",
		ResumeWindow:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()

	var mu sync.Mutex
	var got []core.MessageID
	onDeliver := func(msg *core.Message, _ []core.SubscriptionID) {
		mu.Lock()
		got = append(got, msg.ID)
		mu.Unlock()
	}
	fetch := func() []core.MessageID {
		mu.Lock()
		defer mu.Unlock()
		return append([]core.MessageID(nil), got...)
	}
	s1, err := DialEdge(EdgeConfig{
		Transport:   mesh.Endpoint("es1"),
		EdgeAddr:    "edge",
		Subscriber:  1,
		ListenAddr:  "es1-deliver",
		OnDeliver:   onDeliver,
		DedupWindow: 8,
		AckEvery:    1000, // acks in this test are explicit
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Subscribe([]core.Range{{Low: 0, High: 100}}); err != nil {
		t.Fatal(err)
	}

	// Six publications from a fake matcher; the client acks only the first
	// three before the connection "dies".
	push := func(id core.MessageID) {
		msg := &core.Message{ID: id, Attrs: []float64{50}, Payload: []byte("x")}
		body := (&wire.DeliverBody{Msg: msg}).Encode()
		if err := mesh.Endpoint("m1").Send("edge",
			&wire.Envelope{Kind: wire.KindDeliver, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	for id := core.MessageID(1); id <= 6; id++ {
		push(id)
	}
	waitDeliveries(t, fetch, 6)
	if err := mesh.Endpoint("es1").Send("edge", &wire.Envelope{Kind: wire.KindSessionAck,
		Body: (&wire.SessionAckBody{Token: s1.Token(), Seq: 3}).Encode()}); err != nil {
		t.Fatal(err)
	}
	// Connection loss: the edge detaches the session; 4..6 sit unacked in
	// its resume ring.
	deadline := time.Now().Add(2 * time.Second)
	for !e.Detach(s1.Token()) {
		if time.Now().After(deadline) {
			t.Fatal("detach never succeeded")
		}
		time.Sleep(time.Millisecond)
	}

	// Resume from the acked sequence (what a restarted client would have
	// persisted), understating what the application actually saw: the edge
	// replays 4..6, all already delivered.
	s2, err := s1.Resume(EdgeConfig{
		Transport:  mesh.Endpoint("es1"),
		EdgeAddr:   "edge",
		Subscriber: 1,
		ListenAddr: "es1-deliver-b",
		OnDeliver:  onDeliver,
		LastSeq:    3,
		AckEvery:   1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s2.ReplayLost() != 0 {
		t.Fatalf("replay lost = %d, want 0 within the resume window", s2.ReplayLost())
	}
	waitSuppressed := time.Now().Add(2 * time.Second)
	for s2.SuppressedDuplicates() < 3 {
		if time.Now().After(waitSuppressed) {
			t.Fatalf("suppressed %d replayed duplicates, want 3", s2.SuppressedDuplicates())
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let any wrong extra callback land
	if ids := fetch(); len(ids) != 6 {
		t.Fatalf("application saw %v (%d deliveries), want each of 1..6 exactly once", ids, len(ids))
	}
	// The resumed session is live: a fresh publication still arrives.
	push(7)
	waitDeliveries(t, fetch, 7)
	if ids := fetch(); ids[6] != 7 {
		t.Fatalf("post-resume delivery %v, want 7", ids[6])
	}
}

// TestDedupDisabledByDefault: with DedupWindow zero every delivery reaches
// the application, duplicates included.
func TestDedupDisabledByDefault(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	_, fetch := dedupClient(t, mesh, 0)

	deliver(t, mesh, 7)
	deliver(t, mesh, 7)
	got := waitDeliveries(t, fetch, 2)
	if got[0] != 7 || got[1] != 7 {
		t.Fatalf("application saw %v, want [7 7]", got)
	}
}
