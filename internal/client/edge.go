package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// EdgeConfig parameterizes an EdgeSession.
type EdgeConfig struct {
	// Transport carries session traffic; required.
	Transport transport.Transport
	// EdgeAddr is the edge server to attach to; required.
	EdgeAddr string
	// Subscriber identifies this client.
	Subscriber core.SubscriberID
	// ListenAddr is where the edge pushes EdgeDeliver frames; required.
	ListenAddr string
	// OnDeliver receives notifications; called from transport goroutines.
	// Required.
	OnDeliver func(msg *core.Message, subIDs []core.SubscriptionID)
	// RequestTimeout bounds hello/subscribe round-trips (default 5s).
	RequestTimeout time.Duration
	// DedupWindow, when positive, suppresses duplicate deliveries by
	// publication ID — exactly the Client window. A resume replays
	// everything after the last ACKED sequence, which may overlap
	// publications the application already saw (delivered but not yet
	// acked when the connection died); the window absorbs that overlap.
	DedupWindow int
	// ResumeToken, when non-zero, resumes the edge session with that token
	// instead of opening a new one; LastSeq tells the edge the newest
	// sequence this client has seen, bounding the replay.
	ResumeToken uint64
	// LastSeq accompanies ResumeToken (ignored for new sessions).
	LastSeq uint64
	// AckEvery acks cumulatively after this many deliveries (default 64).
	// Close always sends a final ack. Smaller values shrink the replay
	// overlap after a crash; larger ones cost less ack traffic.
	AckEvery int
}

// EdgeSession is a client attachment to an edge server: subscriptions are
// session-scoped, deliveries arrive as sequence-stamped EdgeDeliver frames,
// and the session can be resumed after a disconnect with Token/LastSeq.
type EdgeSession struct {
	cfg        EdgeConfig
	listenAddr string
	token      uint64
	lost       uint64 // deliveries the edge reported as aged out on resume
	dedup      *dedupRing

	mu      sync.Mutex
	lastSeq uint64
	unacked int
	closed  bool

	delivered  metrics.Counter
	suppressed metrics.Counter
}

// DialEdge opens (or, with ResumeToken set, resumes) a session on an edge
// server. The listener is bound before the hello so no pushed frame can
// arrive unhandled.
func DialEdge(cfg EdgeConfig) (*EdgeSession, error) {
	return dialEdge(cfg, nil)
}

// Resume re-dials a dropped session in the same process: the resume token
// and the duplicate-suppression window carry over from s, so a replay that
// overlaps deliveries the application already saw (sent but unacked when the
// connection died) is fully suppressed. cfg.LastSeq zero means "everything
// this session saw"; pass an explicit (older) sequence to model resuming
// from persisted ack state instead.
func (s *EdgeSession) Resume(cfg EdgeConfig) (*EdgeSession, error) {
	cfg.ResumeToken = s.token
	if cfg.LastSeq == 0 {
		cfg.LastSeq = s.LastSeq()
	}
	return dialEdge(cfg, s.dedup)
}

func dialEdge(cfg EdgeConfig, dedup *dedupRing) (*EdgeSession, error) {
	if cfg.Transport == nil || cfg.EdgeAddr == "" {
		return nil, errors.New("client: Transport and EdgeAddr are required")
	}
	if cfg.OnDeliver == nil || cfg.ListenAddr == "" {
		return nil, errors.New("client: edge sessions require OnDeliver and ListenAddr")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.AckEvery <= 0 {
		cfg.AckEvery = 64
	}
	if dedup == nil {
		dedup = newDedupRing(cfg.DedupWindow)
	}
	s := &EdgeSession{cfg: cfg, dedup: dedup, lastSeq: cfg.LastSeq}
	addr, err := cfg.Transport.Listen(cfg.ListenAddr, s.handle)
	if err != nil {
		return nil, err
	}
	s.listenAddr = addr
	hello := &wire.SessionHelloBody{
		Token:       cfg.ResumeToken,
		LastSeq:     cfg.LastSeq,
		Subscriber:  cfg.Subscriber,
		DeliverAddr: addr,
	}
	resp, err := cfg.Transport.Request(cfg.EdgeAddr,
		&wire.Envelope{Kind: wire.KindSessionHello, Body: hello.Encode()}, cfg.RequestTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindSessionWelcome {
		return nil, fmt.Errorf("client: unexpected hello response %v", resp.Kind)
	}
	w, err := wire.DecodeSessionWelcome(resp.Body)
	if err != nil {
		return nil, err
	}
	if w.Err != "" {
		return nil, fmt.Errorf("client: edge rejected session: %s", w.Err)
	}
	s.token = w.Token
	s.lost = w.Lost
	return s, nil
}

// handle receives pushed EdgeDeliver frames: dedup, deliver, track the
// newest sequence, and ack every AckEvery deliveries. The ack goes out only
// AFTER OnDeliver returns: an ack tells the edge it may forget the delivery,
// so acked must always imply delivered-to-application — acking first would
// weaken the zero-acked-loss contract to at-most-once around the callback.
func (s *EdgeSession) handle(env *wire.Envelope) *wire.Envelope {
	if env.Kind != wire.KindEdgeDeliver {
		return nil
	}
	b, err := wire.DecodeEdgeDeliver(env.Body)
	if err != nil {
		return nil
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	if b.Seq > s.lastSeq {
		s.lastSeq = b.Seq
	}
	s.unacked++
	ack := s.unacked >= s.cfg.AckEvery
	if ack {
		s.unacked = 0
	}
	seq := s.lastSeq
	s.mu.Unlock()
	if b.Msg != nil && s.dedup.duplicate(b.Msg.ID) {
		// A replay overlap the application already saw: safe to ack.
		s.suppressed.Add(1)
	} else {
		s.delivered.Add(1)
		s.cfg.OnDeliver(b.Msg, b.SubIDs)
	}
	if ack {
		s.sendAck(seq)
	}
	return nil
}

func (s *EdgeSession) sendAck(seq uint64) {
	body := (&wire.SessionAckBody{Token: s.token, Seq: seq}).Encode()
	_ = s.cfg.Transport.Send(s.cfg.EdgeAddr,
		&wire.Envelope{Kind: wire.KindSessionAck, Body: body})
}

// Ack immediately acknowledges everything delivered so far.
func (s *EdgeSession) Ack() {
	s.mu.Lock()
	s.unacked = 0
	seq := s.lastSeq
	s.mu.Unlock()
	s.sendAck(seq)
}

// Subscribe registers a session-scoped subscription on the edge.
func (s *EdgeSession) Subscribe(preds []core.Range) (core.SubscriptionID, error) {
	sub := core.NewSubscription(s.cfg.Subscriber, preds)
	body := (&wire.SessionSubBody{Token: s.token, Sub: sub}).Encode()
	resp, err := s.cfg.Transport.Request(s.cfg.EdgeAddr,
		&wire.Envelope{Kind: wire.KindSessionSub, Body: body}, s.cfg.RequestTimeout)
	if err != nil {
		return 0, err
	}
	if resp.Kind != wire.KindSessionSubAck {
		return 0, fmt.Errorf("client: unexpected subscribe response %v", resp.Kind)
	}
	ack, err := wire.DecodeSessionSubAck(resp.Body)
	if err != nil {
		return 0, err
	}
	if ack.Err != "" {
		return 0, fmt.Errorf("client: edge rejected subscription: %s", ack.Err)
	}
	return ack.ID, nil
}

// Unsubscribe removes a session-scoped subscription.
func (s *EdgeSession) Unsubscribe(id core.SubscriptionID) error {
	body := (&wire.SessionUnsubBody{Token: s.token, ID: id}).Encode()
	return s.cfg.Transport.Send(s.cfg.EdgeAddr,
		&wire.Envelope{Kind: wire.KindSessionUnsub, Body: body})
}

// Token returns the session's resume token; give it (with LastSeq) to
// DialEdge after a disconnect to resume.
func (s *EdgeSession) Token() uint64 { return s.token }

// LastSeq returns the newest delivered sequence.
func (s *EdgeSession) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// ReplayLost returns how many deliveries the edge reported as aged out of
// the resume window when this session resumed (0 for new sessions).
func (s *EdgeSession) ReplayLost() uint64 { return s.lost }

// Delivered returns the number of notifications passed to OnDeliver.
func (s *EdgeSession) Delivered() int64 { return s.delivered.Value() }

// SuppressedDuplicates returns the number of deliveries dropped by the
// duplicate-suppression window.
func (s *EdgeSession) SuppressedDuplicates() int64 { return s.suppressed.Value() }

// Close sends the final cumulative ack, tells the edge to end the session
// for good (freeing its buffers, resume ring and subscriptions — the token
// cannot be resumed afterwards), and stops delivering. A session that may
// come back later should just drop the connection and Resume instead. The
// transport (owned by the caller) stays open.
func (s *EdgeSession) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	seq := s.lastSeq
	s.mu.Unlock()
	s.sendAck(seq)
	body := (&wire.SessionCloseBody{Token: s.token}).Encode()
	_ = s.cfg.Transport.Send(s.cfg.EdgeAddr,
		&wire.Envelope{Kind: wire.KindSessionClose, Body: body})
}
