package client

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// fakeDispatcher scripts dispatcher responses on a mesh.
type fakeDispatcher struct {
	mu         sync.Mutex
	subs       []*wire.SubscribeBody
	pubs       []*wire.PublishBody
	unsubs     []*wire.UnsubscribeBody
	queued     []wire.DeliverBody
	overloaded bool // reject acked publishes at admission control
}

func startFake(t *testing.T, mesh *transport.Mesh) *fakeDispatcher {
	t.Helper()
	f := &fakeDispatcher{}
	ep := mesh.Endpoint("disp")
	_, err := ep.Listen("disp", func(env *wire.Envelope) *wire.Envelope {
		f.mu.Lock()
		defer f.mu.Unlock()
		switch env.Kind {
		case wire.KindSubscribe:
			b, err := wire.DecodeSubscribe(env.Body)
			if err != nil {
				return nil
			}
			f.subs = append(f.subs, b)
			if b.Sub.Predicates[0].Low < 0 {
				return &wire.Envelope{Kind: wire.KindError,
					Body: (&wire.ErrorBody{Text: "bad predicate"}).Encode()}
			}
			return &wire.Envelope{Kind: wire.KindSubscribeAck,
				Body: (&wire.SubscribeAckBody{ID: 42, QueueHandle: uint64(b.Sub.Subscriber)}).Encode()}
		case wire.KindPublish:
			b, err := wire.DecodePublish(env.Body)
			if err == nil {
				f.pubs = append(f.pubs, b)
			}
			return nil
		case wire.KindPublishReq:
			b, err := wire.DecodePublish(env.Body)
			if err != nil {
				return nil
			}
			if f.overloaded {
				return &wire.Envelope{Kind: wire.KindError,
					Body: (&wire.ErrorBody{Text: wire.OverloadedPrefix + "dispatcher 1 has 64 unacked publications"}).Encode()}
			}
			f.pubs = append(f.pubs, b)
			return &wire.Envelope{Kind: wire.KindPublishAck,
				Body: (&wire.PublishAckBody{ID: b.Msg.ID}).Encode()}
		case wire.KindUnsubscribe:
			b, err := wire.DecodeUnsubscribe(env.Body)
			if err == nil {
				f.unsubs = append(f.unsubs, b)
			}
			return nil
		case wire.KindPoll:
			out := f.queued
			f.queued = nil
			return &wire.Envelope{Kind: wire.KindPollResponse,
				Body: (&wire.PollResponseBody{Deliveries: out}).Encode()}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	if _, err := New(Config{
		Transport:      mesh.Endpoint("c"),
		DispatcherAddr: "disp",
		OnDeliver:      func(*core.Message, []core.SubscriptionID) {},
	}); err == nil {
		t.Error("OnDeliver without ListenAddr accepted")
	}
}

func TestSubscribePublishUnsubscribe(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	f := startFake(t, mesh)
	cl, err := New(Config{
		Transport:      mesh.Endpoint("c"),
		DispatcherAddr: "disp",
		Subscriber:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := cl.Subscribe([]core.Range{{Low: 1, High: 2}})
	if err != nil || id != 42 {
		t.Fatalf("Subscribe = %v, %v", id, err)
	}
	if cl.DeliverAddr() != "" {
		t.Error("indirect client has a deliver address")
	}
	if err := cl.Publish([]float64{5}, []byte("p")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unsubscribe(42); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		f.mu.Lock()
		done := len(f.pubs) == 1 && len(f.unsubs) == 1
		f.mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.subs) != 1 || f.subs[0].Sub.Subscriber != 7 || f.subs[0].DeliverAddr != "" {
		t.Fatalf("subs: %+v", f.subs)
	}
	if len(f.pubs) != 1 || string(f.pubs[0].Msg.Payload) != "p" {
		t.Fatalf("pubs: %+v", f.pubs)
	}
	if f.unsubs[0].ID != 42 {
		t.Fatalf("unsubs: %+v", f.unsubs)
	}
}

func TestSubscribeErrorSurfaced(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	startFake(t, mesh)
	cl, err := New(Config{Transport: mesh.Endpoint("c"), DispatcherAddr: "disp", Subscriber: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{{Low: -1, High: 2}}); err == nil {
		t.Error("rejected subscription did not error")
	}
}

func TestDirectDelivery(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	f := startFake(t, mesh)
	_ = f
	var mu sync.Mutex
	var got []*core.Message
	cl, err := New(Config{
		Transport:      mesh.Endpoint("c"),
		DispatcherAddr: "disp",
		Subscriber:     7,
		ListenAddr:     "c",
		OnDeliver: func(m *core.Message, ids []core.SubscriptionID) {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.DeliverAddr() != "c" {
		t.Fatalf("DeliverAddr = %q", cl.DeliverAddr())
	}
	// A matcher pushes a delivery directly.
	m := core.NewMessage([]float64{1}, []byte("hello"))
	m.ID = 3
	body := (&wire.DeliverBody{Subscriber: 7, Msg: m, SubIDs: []core.SubscriptionID{42}}).Encode()
	matcherEp := mesh.Endpoint("matcher")
	if _, err := matcherEp.Listen("matcher", func(*wire.Envelope) *wire.Envelope { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := matcherEp.Send("c", &wire.Envelope{Kind: wire.KindDeliver, From: 1, Body: body}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 1 {
			if got[0].ID != 3 || string(got[0].Payload) != "hello" {
				t.Fatalf("delivery: %+v", got[0])
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("delivery never arrived")
}

func TestPoll(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	f := startFake(t, mesh)
	m := core.NewMessage([]float64{1}, nil)
	m.ID = 9
	f.mu.Lock()
	f.queued = []wire.DeliverBody{{Subscriber: 7, Msg: m}}
	f.mu.Unlock()
	cl, err := New(Config{Transport: mesh.Endpoint("c"), DispatcherAddr: "disp", Subscriber: 7})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := cl.Poll(-5) // negative clamps to default
	if err != nil || len(ds) != 1 || ds[0].Msg.ID != 9 {
		t.Fatalf("Poll = %+v, %v", ds, err)
	}
	ds, err = cl.Poll(10)
	if err != nil || len(ds) != 0 {
		t.Fatalf("second Poll = %+v, %v", ds, err)
	}
}

func TestPublishOversizePayloadRejected(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	startFake(t, mesh)
	cl, err := New(Config{Transport: mesh.Endpoint("c"), DispatcherAddr: "disp", Subscriber: 7})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.Publish([]float64{1}, make([]byte, wire.MaxFrame))
	if !errors.Is(err, wire.ErrBodyTooLarge) {
		t.Fatalf("oversize publish error = %v, want ErrBodyTooLarge", err)
	}
	// The client remains usable.
	if err := cl.Publish([]float64{1}, []byte("ok")); err != nil {
		t.Fatalf("publish after oversize rejection: %v", err)
	}
}

// TestPublishCleanErrorWhenDispatcherDies: a dispatcher that dies between
// subscribe and publish must surface as a prompt, classifiable error naming
// the dispatcher — never an indefinite block.
func TestPublishCleanErrorWhenDispatcherDies(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	startFake(t, mesh)
	cl, err := New(Config{Transport: mesh.Endpoint("c"), DispatcherAddr: "disp", Subscriber: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{{Low: 1, High: 2}}); err != nil {
		t.Fatal(err)
	}
	mesh.SetDown("disp", true)
	start := time.Now()
	err = cl.Publish([]float64{1}, []byte("orphan"))
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("publish against a dead dispatcher blocked for %v", elapsed)
	}
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("publish error = %v, want ErrUnreachable", err)
	}
	if !strings.Contains(err.Error(), "dispatcher disp unreachable") {
		t.Fatalf("publish error %q does not name the dispatcher", err)
	}
}

// flakySend wraps a transport, failing the first n Sends with
// ErrUnreachable.
type flakySend struct {
	transport.Transport
	mu    sync.Mutex
	fails int
	sends int
}

func (f *flakySend) Send(addr string, env *wire.Envelope) error {
	f.mu.Lock()
	f.sends++
	fail := f.fails > 0
	if fail {
		f.fails--
	}
	f.mu.Unlock()
	if fail {
		return transport.ErrUnreachable
	}
	return f.Transport.Send(addr, env)
}

// TestPublishRetriesOnceOnUnreachable: one transient unreachable error is
// absorbed by a single retry; two in a row fail.
func TestPublishRetriesOnceOnUnreachable(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	fake := startFake(t, mesh)
	fl := &flakySend{Transport: mesh.Endpoint("c"), fails: 1}
	cl, err := New(Config{Transport: fl, DispatcherAddr: "disp", Subscriber: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish([]float64{5}, []byte("retried")); err != nil {
		t.Fatalf("publish with one transient failure: %v", err)
	}
	waitForCond(t, func() bool {
		fake.mu.Lock()
		defer fake.mu.Unlock()
		return len(fake.pubs) == 1
	})
	fl.mu.Lock()
	sends := fl.sends
	fl.mu.Unlock()
	if sends != 2 {
		t.Fatalf("sends = %d, want 2 (original + one retry)", sends)
	}

	fl.mu.Lock()
	fl.fails = 2
	fl.mu.Unlock()
	if err := cl.Publish([]float64{5}, nil); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("publish with persistent failure: err = %v, want ErrUnreachable", err)
	}
}

// countingTransport counts Send attempts passing through to the inner
// transport (which may itself be a chaos-wrapped endpoint).
type countingTransport struct {
	transport.Transport
	mu    sync.Mutex
	sends int
}

func (c *countingTransport) Send(addr string, env *wire.Envelope) error {
	c.mu.Lock()
	c.sends++
	c.mu.Unlock()
	return c.Transport.Send(addr, env)
}

func (c *countingTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sends
}

// TestPublishRetryBudgetConfigurable drives Publish through the chaos
// transport with the client→dispatcher link cut and pins the attempt count
// for a raised budget, a disabled one, and recovery after the link heals.
func TestPublishRetryBudgetConfigurable(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	fake := startFake(t, mesh)
	ctrl := chaos.NewController(1)
	defer ctrl.Close()
	ct := &countingTransport{Transport: chaos.Wrap(ctrl, mesh.Endpoint("c"), "c")}
	ctrl.Partition("c", "disp", true)

	cl, err := New(Config{
		Transport:      ct,
		DispatcherAddr: "disp",
		Subscriber:     7,
		PublishRetries: 3,
		PublishBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish([]float64{1}, nil); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("publish across cut link: err = %v, want ErrUnreachable", err)
	}
	if got := ct.count(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (original + 3 retries)", got)
	}

	// A negative budget disables retries entirely.
	noRetry, err := New(Config{
		Transport:      ct,
		DispatcherAddr: "disp",
		Subscriber:     8,
		PublishRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := ct.count()
	if err := noRetry.Publish([]float64{1}, nil); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("no-retry publish: err = %v, want ErrUnreachable", err)
	}
	if got := ct.count() - before; got != 1 {
		t.Fatalf("attempts = %d, want 1 (retries disabled)", got)
	}

	// Once the link heals, the same client publishes cleanly.
	ctrl.Heal()
	if err := cl.Publish([]float64{2}, []byte("after heal")); err != nil {
		t.Fatalf("publish after heal: %v", err)
	}
	waitForCond(t, func() bool {
		fake.mu.Lock()
		defer fake.mu.Unlock()
		return len(fake.pubs) == 1
	})
}

// TestPublishAckOverloaded: in AckPublish mode an admission-control
// rejection surfaces as ErrOverloaded and an admitted publish round-trips.
func TestPublishAckOverloaded(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	fake := startFake(t, mesh)
	cl, err := New(Config{
		Transport:      mesh.Endpoint("c"),
		DispatcherAddr: "disp",
		Subscriber:     7,
		AckPublish:     true,
		PublishTTL:     250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Publish([]float64{1}, []byte("admitted")); err != nil {
		t.Fatalf("acked publish: %v", err)
	}
	fake.mu.Lock()
	if len(fake.pubs) != 1 {
		fake.mu.Unlock()
		t.Fatal("acked publish did not reach the dispatcher")
	}
	ttl := fake.pubs[0].Msg.TTL
	fake.overloaded = true
	fake.mu.Unlock()
	if want := int64(250 * time.Millisecond); ttl != want {
		t.Fatalf("published TTL = %d, want %d", ttl, want)
	}
	err = cl.Publish([]float64{1}, []byte("rejected"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded publish: err = %v, want ErrOverloaded", err)
	}
}

func waitForCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
