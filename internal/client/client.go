// Package client is the BlueDove client library: publishers and subscribers
// connect to any dispatcher (the paper's Internet-facing front end) to
// register subscriptions, publish messages, and receive notifications —
// either pushed directly to a listening client or fetched by polling the
// dispatcher-hosted queue (paper Section II-B).
package client

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Config parameterizes a Client.
type Config struct {
	// Transport carries client traffic; required.
	Transport transport.Transport
	// DispatcherAddr is the front-end endpoint to talk to; required.
	DispatcherAddr string
	// Subscriber identifies this client; required for subscribing.
	Subscriber core.SubscriberID
	// ListenAddr, when set together with OnDeliver, enables direct
	// delivery: the client listens here for pushed notifications.
	ListenAddr string
	// OnDeliver receives pushed notifications in direct mode. It is called
	// from transport goroutines; implementations must be concurrency-safe.
	OnDeliver func(msg *core.Message, subIDs []core.SubscriptionID)
	// RequestTimeout bounds subscribe/poll round-trips (default 5s).
	RequestTimeout time.Duration
	// Telemetry, when non-nil, samples publications at the bundle's rate
	// (stamping the client-side publish hop, so traces start at the true
	// origin rather than at dispatcher ingest), records traced deliveries,
	// and registers the client's counters and end-to-end latency histogram.
	Telemetry *telemetry.Telemetry
	// PublishRetries is the number of additional Publish attempts when the
	// dispatcher is unreachable. Zero selects the default (one retry with
	// no delay — the historical behavior); negative disables retries.
	PublishRetries int
	// PublishBackoff, when positive, spaces publish retries with a
	// full-jitter exponential backoff: retry n waits a uniformly random
	// duration in [0, PublishBackoff<<(n-1)]. Zero retries immediately.
	PublishBackoff time.Duration
	// PublishTTL stamps each publication with this time-to-live, so an
	// overloaded matcher sheds it at dequeue once stale instead of
	// matching it (0 = no TTL).
	PublishTTL time.Duration
	// AckPublish makes Publish a request/response round-trip: the
	// dispatcher explicitly admits (PublishAck) or rejects the
	// publication, and an overloaded dispatcher's rejection surfaces as
	// ErrOverloaded. False (the default) keeps fire-and-forget publishes.
	AckPublish bool
	// DedupWindow, when positive, suppresses duplicate pushed deliveries:
	// the client remembers the last DedupWindow distinct publication IDs
	// and drops redeliveries of them before the application callback.
	// At-least-once clusters (dispatcher persistence) redeliver whenever a
	// matcher ack is lost or a node restarts mid-flight; the window turns
	// that into exactly-once for the application, for any duplicate arriving
	// within the last DedupWindow distinct publications. Zero disables
	// suppression (every delivery reaches OnDeliver).
	DedupWindow int
	// Now supplies the clock for trace stamps (default time.Now).
	Now func() int64
}

// Client is a connected BlueDove client.
type Client struct {
	cfg        Config
	listenAddr string

	// e2eLatency observes client publish to client delivery per traced
	// publication (ns); only traced messages this client receives feed it.
	e2eLatency *metrics.Histogram
	published  metrics.Counter
	delivered  metrics.Counter
	suppressed metrics.Counter

	// dedup is the bounded duplicate-suppression window (nil when
	// DedupWindow is zero).
	dedup *dedupRing
}

// dedupRing is a bounded FIFO of the last N distinct message IDs with a
// lookup set — the duplicate-suppression window shared by direct-mode
// clients and edge sessions. Safe for concurrent use (deliveries arrive from
// transport goroutines).
type dedupRing struct {
	mu   sync.Mutex
	seen map[core.MessageID]struct{}
	ring []core.MessageID
	pos  int
}

func newDedupRing(window int) *dedupRing {
	if window <= 0 {
		return nil
	}
	return &dedupRing{
		seen: make(map[core.MessageID]struct{}, window),
		ring: make([]core.MessageID, window),
	}
}

// duplicate reports (and records) whether id was already seen within the
// window. A nil ring and the zero ID (nothing safe to key on) never
// suppress.
func (d *dedupRing) duplicate(id core.MessageID) bool {
	if d == nil || id == 0 {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seen[id]; dup {
		return true
	}
	if old := d.ring[d.pos]; old != 0 {
		delete(d.seen, old)
	}
	d.ring[d.pos] = id
	d.pos = (d.pos + 1) % len(d.ring)
	d.seen[id] = struct{}{}
	return false
}

// New builds a client; in direct mode (ListenAddr + OnDeliver set) it binds
// the delivery listener immediately.
func New(cfg Config) (*Client, error) {
	if cfg.Transport == nil || cfg.DispatcherAddr == "" {
		return nil, errors.New("client: Transport and DispatcherAddr are required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	c := &Client{cfg: cfg, e2eLatency: metrics.NewHistogram(),
		dedup: newDedupRing(cfg.DedupWindow)}
	if tel := cfg.Telemetry; tel != nil {
		r := tel.Registry
		r.Counter("client.published", "publications sent by this client", &c.published)
		r.Counter("client.delivered", "notifications received by this client", &c.delivered)
		r.Counter("client.duplicates_suppressed",
			"pushed deliveries dropped by the duplicate-suppression window", &c.suppressed)
		r.Histogram("client.deliver_latency_seconds",
			"client publish to client delivery per traced publication", c.e2eLatency, 1e-9)
	}
	if cfg.OnDeliver != nil {
		if cfg.ListenAddr == "" {
			return nil, errors.New("client: OnDeliver requires ListenAddr")
		}
		addr, err := cfg.Transport.Listen(cfg.ListenAddr, c.handle)
		if err != nil {
			return nil, err
		}
		c.listenAddr = addr
	}
	return c, nil
}

// handle receives pushed deliveries in direct mode (single frames and the
// coalesced DeliverBatch frames batching matchers emit).
func (c *Client) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindDeliver:
		if b, err := wire.DecodeDeliver(env.Body); err == nil {
			if c.duplicate(b.Msg) {
				return nil
			}
			c.observeDelivery(b.Msg)
			c.cfg.OnDeliver(b.Msg, b.SubIDs)
		}
	case wire.KindDeliverBatch:
		if b, err := wire.DecodeDeliverBatch(env.Body); err == nil {
			for i := range b.Deliveries {
				if c.duplicate(b.Deliveries[i].Msg) {
					continue
				}
				c.observeDelivery(b.Deliveries[i].Msg)
				c.cfg.OnDeliver(b.Deliveries[i].Msg, b.Deliveries[i].SubIDs)
			}
		}
	}
	return nil
}

// duplicate reports (and records) whether msg was already delivered within
// the suppression window.
func (c *Client) duplicate(msg *core.Message) bool {
	if msg == nil || !c.dedup.duplicate(msg.ID) {
		return false
	}
	c.suppressed.Add(1)
	return true
}

// SuppressedDuplicates returns the number of deliveries dropped by the
// duplicate-suppression window.
func (c *Client) SuppressedDuplicates() int64 { return c.suppressed.Value() }

// observeDelivery counts the notification and, for traced messages, records
// the trace on the client side and feeds the end-to-end latency histogram.
func (c *Client) observeDelivery(msg *core.Message) {
	c.delivered.Add(1)
	tel := c.cfg.Telemetry
	if tel == nil || msg == nil || msg.Trace == nil {
		return
	}
	tel.Tracer.Record(msg.ID, msg.Trace)
	if pub := msg.Trace.Hops[core.HopPublish]; pub != 0 {
		c.e2eLatency.Observe(c.cfg.Now() - pub)
	}
}

// DeliverAddr returns the address matchers push to (empty in indirect
// mode).
func (c *Client) DeliverAddr() string { return c.listenAddr }

// Subscribe registers interest as a conjunction of per-dimension ranges and
// returns the assigned subscription ID.
func (c *Client) Subscribe(preds []core.Range) (core.SubscriptionID, error) {
	sub := core.NewSubscription(c.cfg.Subscriber, preds)
	body := (&wire.SubscribeBody{Sub: sub, DeliverAddr: c.listenAddr}).Encode()
	resp, err := c.cfg.Transport.Request(c.cfg.DispatcherAddr,
		&wire.Envelope{Kind: wire.KindSubscribe, Body: body}, c.cfg.RequestTimeout)
	if err != nil {
		return 0, err
	}
	switch resp.Kind {
	case wire.KindSubscribeAck:
		ack, err := wire.DecodeSubscribeAck(resp.Body)
		if err != nil {
			return 0, err
		}
		return ack.ID, nil
	case wire.KindError:
		if e, err := wire.DecodeError(resp.Body); err == nil {
			return 0, fmt.Errorf("client: subscribe rejected: %s", e.Text)
		}
	}
	return 0, fmt.Errorf("client: unexpected response %v", resp.Kind)
}

// Unsubscribe removes a subscription.
func (c *Client) Unsubscribe(id core.SubscriptionID) error {
	body := (&wire.UnsubscribeBody{ID: id}).Encode()
	return c.cfg.Transport.Send(c.cfg.DispatcherAddr,
		&wire.Envelope{Kind: wire.KindUnsubscribe, Body: body})
}

// ErrOverloaded is returned by Publish (AckPublish mode) when the
// dispatcher rejects the publication at admission control; the publication
// was not accepted and the caller should back off before retrying.
var ErrOverloaded = errors.New("client: dispatcher overloaded")

// Publish sends one publication (a point in the attribute space plus an
// opaque payload). Payloads too large for a wire frame are rejected here so
// applications get an error rather than the codec's panic. An unreachable
// dispatcher (stale pooled connection, brief blip) is retried
// Config.PublishRetries times (default once, immediately — spaced by
// full-jitter exponential backoff when PublishBackoff is set); when the
// dispatcher stays gone the caller gets a clean error naming it rather
// than an indefinite hang. With AckPublish set, Publish round-trips and an
// overloaded dispatcher's rejection surfaces as ErrOverloaded (never
// retried here: the caller owns that backoff decision).
func (c *Client) Publish(attrs []float64, payload []byte) error {
	// Slack covers the frame header, IDs and the trace context a sampled
	// message carries.
	if len(payload)+64+wire.TraceOverhead+8*len(attrs) > wire.MaxFrame {
		return fmt.Errorf("%w: %d-byte payload", wire.ErrBodyTooLarge, len(payload))
	}
	msg := core.NewMessage(attrs, payload)
	if c.cfg.PublishTTL > 0 {
		msg.TTL = int64(c.cfg.PublishTTL)
	}
	c.published.Add(1)
	if tel := c.cfg.Telemetry; tel != nil && tel.Sampler.Sample() {
		msg.Trace = &core.TraceCtx{}
		msg.Trace.Stamp(core.HopPublish, c.cfg.Now())
	}
	body := (&wire.PublishBody{Msg: msg}).Encode()
	retries := c.cfg.PublishRetries
	switch {
	case retries == 0:
		retries = 1
	case retries < 0:
		retries = 0
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = c.publishOnce(body)
		if err == nil || !errors.Is(err, transport.ErrUnreachable) || attempt >= retries {
			break
		}
		if b := c.cfg.PublishBackoff; b > 0 {
			// Full jitter: uniform in [0, b<<attempt].
			time.Sleep(time.Duration(rand.Int63n(int64(b<<attempt) + 1)))
		}
	}
	if errors.Is(err, transport.ErrUnreachable) {
		return fmt.Errorf("client: dispatcher %s unreachable: %w", c.cfg.DispatcherAddr, err)
	}
	return err
}

// publishOnce performs one publish attempt: fire-and-forget by default, a
// request/response round-trip in AckPublish mode.
func (c *Client) publishOnce(body []byte) error {
	if !c.cfg.AckPublish {
		return c.cfg.Transport.Send(c.cfg.DispatcherAddr,
			&wire.Envelope{Kind: wire.KindPublish, Body: body})
	}
	resp, err := c.cfg.Transport.Request(c.cfg.DispatcherAddr,
		&wire.Envelope{Kind: wire.KindPublishReq, Body: body}, c.cfg.RequestTimeout)
	if err != nil {
		return err
	}
	switch resp.Kind {
	case wire.KindPublishAck:
		return nil
	case wire.KindError:
		if e, derr := wire.DecodeError(resp.Body); derr == nil {
			if strings.HasPrefix(e.Text, wire.OverloadedPrefix) {
				return fmt.Errorf("%w: %s", ErrOverloaded, e.Text)
			}
			return fmt.Errorf("client: publish rejected: %s", e.Text)
		}
	}
	return fmt.Errorf("client: unexpected response %v", resp.Kind)
}

// Poll fetches up to max queued notifications (indirect mode); max <= 0
// uses the server default batch.
func (c *Client) Poll(max int) ([]wire.DeliverBody, error) {
	body := (&wire.PollBody{Subscriber: c.cfg.Subscriber, Max: uint32(maxNonNeg(max))}).Encode()
	resp, err := c.cfg.Transport.Request(c.cfg.DispatcherAddr,
		&wire.Envelope{Kind: wire.KindPoll, Body: body}, c.cfg.RequestTimeout)
	if err != nil {
		return nil, err
	}
	if resp.Kind != wire.KindPollResponse {
		return nil, fmt.Errorf("client: unexpected response %v", resp.Kind)
	}
	b, err := wire.DecodePollResponse(resp.Body)
	if err != nil {
		return nil, err
	}
	return b.Deliveries, nil
}

func maxNonNeg(v int) int {
	if v < 0 {
		return 0
	}
	return v
}
