package client

import (
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/edge"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// edgeRig boots a mesh with a minimal upstream dispatcher stub and one edge
// server for client-session tests.
func edgeRig(t *testing.T) (*transport.Mesh, *edge.Edge) {
	t.Helper()
	mesh := transport.NewMesh(0)
	var subID uint64
	if _, err := mesh.Endpoint("disp").Listen("disp", func(env *wire.Envelope) *wire.Envelope {
		if env.Kind != wire.KindSubscribe {
			return nil
		}
		subID++
		return &wire.Envelope{Kind: wire.KindSubscribeAck,
			Body: (&wire.SubscribeAckBody{ID: core.SubscriptionID(subID)}).Encode()}
	}); err != nil {
		t.Fatal(err)
	}
	e, err := edge.New(edge.Config{
		ID:             3,
		Addr:           "edge",
		Space:          core.UniformSpace(1, 100),
		Transport:      mesh.Endpoint("edge"),
		DispatcherAddr: "disp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Stop(); mesh.Close() })
	return mesh, e
}

func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEdgeAckSentAfterDeliver: the cumulative ack covering a delivery must
// not leave the client until OnDeliver has returned — an acked delivery the
// application never saw would be silent loss ("acked implies delivered").
func TestEdgeAckSentAfterDeliver(t *testing.T) {
	mesh, e := edgeRig(t)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s, err := DialEdge(EdgeConfig{
		Transport:  mesh.Endpoint("es1"),
		EdgeAddr:   "edge",
		Subscriber: 1,
		ListenAddr: "es1-deliver",
		AckEvery:   1, // ack every delivery
		OnDeliver: func(msg *core.Message, _ []core.SubscriptionID) {
			entered <- struct{}{}
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe([]core.Range{{Low: 0, High: 100}}); err != nil {
		t.Fatal(err)
	}
	e.Deliver(core.NewMessage([]float64{50}, []byte("p")))
	<-entered
	// The delivery sits in OnDeliver; the edge must still hold it unacked.
	time.Sleep(30 * time.Millisecond)
	if e.BufferedBytes() == 0 {
		t.Fatal("delivery acked before OnDeliver returned")
	}
	close(release)
	waitCond(t, "ack after OnDeliver returns", func() bool { return e.BufferedBytes() == 0 })
}

// TestEdgeCloseFreesServerSession: Close ends the session on the edge — the
// server forgets it and the token cannot be resumed.
func TestEdgeCloseFreesServerSession(t *testing.T) {
	mesh, e := edgeRig(t)
	var mu sync.Mutex
	var got []core.MessageID
	cfg := EdgeConfig{
		Transport:  mesh.Endpoint("es1"),
		EdgeAddr:   "edge",
		Subscriber: 1,
		ListenAddr: "es1-deliver",
		AckEvery:   1,
		OnDeliver: func(msg *core.Message, _ []core.SubscriptionID) {
			mu.Lock()
			got = append(got, msg.ID)
			mu.Unlock()
		},
	}
	s, err := DialEdge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Subscribe([]core.Range{{Low: 0, High: 100}}); err != nil {
		t.Fatal(err)
	}
	e.Deliver(core.NewMessage([]float64{50}, []byte("p")))
	waitCond(t, "delivery", func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 })

	s.Close()
	waitCond(t, "edge forgets the session", func() bool { return e.Sessions() == 0 })
	cfg.ListenAddr = "es1-deliver-2"
	if _, err := s.Resume(cfg); err == nil {
		t.Fatal("closed session resumed")
	}
}
