module bluedove

go 1.24
